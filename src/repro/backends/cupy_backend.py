"""GPU backend (cupy) — registered only when ``cupy`` is installed.

This module is always importable (autodoc builds on accelerator-free
machines); the *registration* is gated: without cupy the registry
simply does not list ``"cupy"`` and requesting it raises the registry's
:class:`repro.errors.ConfigurationError` naming the backends that *are*
available.  :mod:`repro.backends` additionally pre-gates its import on
``importlib.util.find_spec``.

The kernels this backend feeds are the same xp-generic code paths the
CPU backends use: :meth:`repro.qep.pencil.QuadraticPencil.apply_batch`,
:class:`repro.solvers.batched.BatchedBiCG` and
:class:`repro.solvers.batched.CrossEnergyBatch` call only namespace
functions (``xp.where``, ``xp.divide``, ``@`` on CSR blocks), all of
which cupy/cupyx provide.  Accumulation (moments, Hankel extraction)
stays on the host in complex128: Step-1 solutions come back through
:meth:`to_host` once per solve.

No sparse LU: cupy's SuperLU wrappers are version-dependent, so the
backend declares ``has_sparse_lu = False`` and the direct strategy
falls back to the host full-precision factorization.
"""

from __future__ import annotations

try:
    import cupy as _cp
    import cupyx.scipy.sparse as _cpsp

    HAVE_CUPY = True
except ImportError:  # pragma: no cover - exercised on GPU machines only
    _cp = _cpsp = None
    HAVE_CUPY = False

import numpy as np

from repro.backends.base import ArrayBackend
from repro.backends.registry import register_backend


class CupyBackend(ArrayBackend):
    """CUDA backend: device-resident BiCG state and CSR blocks."""

    name = "cupy"
    xp = _cp
    has_sparse_lu = False
    bitwise_numpy = False

    def asarray(self, x, dtype=None):
        return _cp.asarray(x, dtype=dtype)

    def to_host(self, x):
        if isinstance(x, _cp.ndarray):
            return _cp.asnumpy(x)
        return x

    def from_host(self, x):
        return _cp.asarray(x)

    def solver_blocks(self, blocks):
        """Device CSR copies of the block triple (solve dtype).

        Returns a duck-typed triple (``hm``/``h0``/``hp``/``n``/
        ``cell_length``) rather than a :class:`repro.qep.blocks.
        BlockTriple` — host-side validation does not apply to device
        matrices, and the matvec kernels only need the attributes.
        """
        import scipy.sparse as sp

        def ship(m):
            if sp.issparse(m):
                return _cpsp.csr_matrix(m.astype(self.solve_dtype))
            return _cp.asarray(np.asarray(m, dtype=self.solve_dtype))

        return _DeviceTriple(
            ship(blocks.hm), ship(blocks.h0), ship(blocks.hp),
            int(blocks.n), float(blocks.cell_length),
        )


class _DeviceTriple:
    """Minimal device-resident block triple for the matvec kernels."""

    __slots__ = ("hm", "h0", "hp", "n", "cell_length")

    def __init__(self, hm, h0, hp, n, cell_length):
        self.hm, self.h0, self.hp = hm, h0, hp
        self.n = n
        self.cell_length = cell_length


if HAVE_CUPY:
    register_backend("cupy")(CupyBackend)
