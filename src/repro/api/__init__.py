"""repro.api — the unified, declarative CBS workload surface.

One request/response shape for every workload in the paper::

    from repro.api import CBSJob, SystemSpec, ScanSpec, ExecutionSpec, compute

    job = CBSJob(
        system=SystemSpec("ladder", {"width": 4}),
        scan=ScanSpec(window=(-2.0, 2.0, 41), n_mm=4, n_rh=4, seed=7),
        execution=ExecutionSpec(mode="orchestrated", cache_dir="cache"),
    )
    result = compute(job)            # a versioned, provenance-stamped CBSResult
    for sl in compute_iter(job):     # ...or streamed slice by slice
        print(sl.energy, sl.count)

* Jobs are frozen, validated, and JSON-serializable
  (``job.to_json()`` / ``CBSJob.from_json``); :meth:`CBSJob.job_hash`
  is the canonical identity recorded in result provenance, and
  :meth:`CBSJob.cache_context` keys the persistent slice cache.
* Physical systems are registry names (:func:`register_system`), so a
  new builder is an entry, not a new API.
* Results persist via :func:`save_result` / :func:`load_result`
  (JSON header + NPZ arrays, schema-versioned).
* Attaching a :class:`TransportSpec` turns the same job into a
  two-probe transport workload — electrode self-energies from the SS
  contour moments plus the Landauer transmission — returned as a
  :class:`TransportResult` under the identical execution, streaming,
  caching, and persistence machinery.
* Attaching a :class:`KParSpec` sweeps the transverse Brillouin zone:
  the job runs over the ``ScanSpec × KParSpec`` product grid (one
  system build per k∥, sharded as (E, k∥) tiles in the orchestrated
  modes), result slices carry the k∥ axis, and a transport job's
  k∥-weighted sum is the Brillouin-zone transmission
  (:meth:`TransportResult.total_transmissions`).
* Attaching a :class:`MapSpec` on top of a :class:`KParSpec` turns the
  product grid into an adaptive dense map: the
  :class:`repro.maps.MapSurrogate` engine solves a coarse pixel
  subset, refines across both grid axes where neighbors disagree, and
  interpolates the rest with per-pixel error certificates — returned
  as a :class:`repro.maps.MapResult` whose pixels say whether they
  were solved and how far off they may be.

The legacy entry points (``SSHankelSolver.solve``,
``CBSCalculator.scan``, ``ScanOrchestrator``) remain as the internal
engines behind :func:`compute`.
"""

from repro.api.facade import compute, compute_iter
from repro.api.registry import (
    available_systems,
    register_system,
    resolve_system,
)
from repro.api.spec import (
    JOB_SPEC_VERSION,
    CBSJob,
    ExecutionSpec,
    KParSpec,
    MapSpec,
    RingSpec,
    ScanSpec,
    SystemSpec,
    TransportSpec,
)
from repro.cbs.orchestrator import (
    CancelFn,
    ProgressFn,
    RefinePolicy,
    TuningPolicy,
)
from repro.cbs.scan import CBS_RESULT_SCHEMA_VERSION, CBSResult, EnergySlice
from repro.io.results import load_result, save_result
from repro.transport.scan import (
    TRANSPORT_RESULT_SCHEMA_VERSION,
    TransportResult,
    TransportSlice,
    monkhorst_pack,
)

__all__ = [
    "CBS_RESULT_SCHEMA_VERSION",
    "CBSJob",
    "CBSResult",
    "CancelFn",
    "EnergySlice",
    "ExecutionSpec",
    "JOB_SPEC_VERSION",
    "KParSpec",
    "MapSpec",
    "ProgressFn",
    "RefinePolicy",
    "RingSpec",
    "ScanSpec",
    "SystemSpec",
    "TRANSPORT_RESULT_SCHEMA_VERSION",
    "TransportResult",
    "TransportSlice",
    "TransportSpec",
    "TuningPolicy",
    "available_systems",
    "compute",
    "compute_iter",
    "load_result",
    "monkhorst_pack",
    "register_system",
    "resolve_system",
    "save_result",
]
