"""The declarative CBS workload spec: :class:`CBSJob` and its parts.

Every workload in the paper is one shape — *solve the ring QEP for
system S over energies E with Sakurai-Sugiura parameters P* — and a
:class:`CBSJob` is exactly that sentence as a frozen, validated,
fully-serializable value:

* :class:`SystemSpec` — *which physics*: a registered builder name plus
  its parameters (resolved through :mod:`repro.api.registry`);
* :class:`RingSpec` — *which eigenvalue ring*: the annulus contour and
  its quadrature;
* :class:`ScanSpec` — *which energies and which numerics*: the energy
  grid (explicit list or equidistant window) and the SS subspace /
  Step-1 solver parameters;
* :class:`ExecutionSpec` — *how to run it*: serial, threads, processes,
  or the fully orchestrated adaptive path, plus warm-start policy and
  the persistent slice cache.

``to_dict()``/``from_dict()`` round-trip through pure JSON types, and
two derived hashes key everything downstream:

* :meth:`CBSJob.job_hash` — canonical SHA-256 of the *whole* spec; the
  provenance identity recorded in every :class:`repro.cbs.CBSResult`.
* :meth:`CBSJob.cache_context` — hash of only the answer-determining
  parts (system + ring + scan numerics + effective tuning policy);
  execution details (worker counts, shard counts, streaming) are
  excluded so re-running the same physics under a different executor
  reuses the same :class:`repro.io.slice_cache.SliceCache` entries.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field, fields
from types import MappingProxyType
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.backends.registry import available_backends, get_backend
from repro.cbs.orchestrator import RefinePolicy, TuningPolicy
from repro.errors import ConfigurationError
from repro.ss.solver import SSConfig

#: Bump when the serialized job layout changes incompatibly.
JOB_SPEC_VERSION = 1

_EXEC_MODES = ("serial", "threads", "processes", "pool", "orchestrated")


def _check_keys(d: Mapping[str, Any], allowed, where: str) -> None:
    unknown = sorted(set(d) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"unknown key(s) {unknown} in {where}; allowed: {sorted(allowed)}"
        )


def _policy_from_dict(cls, d: Optional[Mapping[str, Any]], where: str):
    if d is None:
        return None
    allowed = [f.name for f in fields(cls)]
    _check_keys(d, allowed, where)
    return cls(**d)


# ---------------------------------------------------------------------------
# the four spec parts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SystemSpec:
    """A named physical system: registry name + builder parameters.

    ``params`` is stored as a read-only mapping (a private copy behind a
    :class:`types.MappingProxyType`), so a job really is frozen: mutating
    ``job.system.params`` after construction raises instead of silently
    desynchronizing the job from hashes computed earlier.

    Parameters
    ----------
    name : str
        A system name registered through
        :func:`repro.api.register_system` (built-ins: ``"chain"``,
        ``"diatomic-chain"``, ``"ladder"``, ``"al100"``,
        ``"nanotube"``).
    params : mapping of str to JSON value, optional
        Keyword arguments passed to the registered builder.  Values
        must be JSON-serializable (they enter ``to_dict`` verbatim).

    Raises
    ------
    repro.errors.ConfigurationError
        For an empty/non-string name or non-string parameter keys.

    Examples
    --------
    >>> from repro.api import SystemSpec
    >>> spec = SystemSpec("ladder", {"width": 2})
    >>> spec.build().n
    2
    """

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError(
                f"SystemSpec.name must be a non-empty string, got {self.name!r}"
            )
        params = dict(self.params)
        for key in params:
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"SystemSpec.params keys must be strings, got {key!r}"
                )
        object.__setattr__(self, "params", MappingProxyType(params))

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash would choke on the mapping;
        # hash the canonical JSON form instead (params are JSON values).
        return hash(
            (self.name, json.dumps(dict(self.params), sort_keys=True,
                                   default=str))
        )

    # MappingProxyType does not pickle; ship the plain dict across
    # process boundaries and rewrap on the other side.
    def __getstate__(self):
        return {"name": self.name, "params": dict(self.params)}

    def __setstate__(self, state) -> None:
        object.__setattr__(self, "name", state["name"])
        object.__setattr__(
            self, "params", MappingProxyType(dict(state["params"]))
        )

    def build(self):
        """Resolve to a :class:`repro.qep.blocks.BlockTriple`."""
        from repro.api.registry import resolve_system

        return resolve_system(self.name, self.params)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "SystemSpec":
        _check_keys(d, ("name", "params"), "SystemSpec")
        return cls(name=d.get("name", ""), params=d.get("params", {}))


@dataclass(frozen=True)
class RingSpec:
    """The target eigenvalue annulus and its quadrature.

    Parameters
    ----------
    lambda_min : float, optional
        The paper's reciprocal ring ``λ_min < |λ| < 1/λ_min``.
    ring_radii : (float, float), optional
        Explicit ``(r_in, r_out)`` radii overriding ``lambda_min``.  A
        non-reciprocal ring disables the dual-system shortcut and
        solves all ``2 N_int`` systems.
    n_int : int, optional
        Quadrature points per circle (``N_int``).
    annulus_margin : float, optional
        Relative margin shrinking the *acceptance* ring (drops
        slowly-converging boundary modes).

    Notes
    -----
    Validation is delegated to :class:`repro.ss.solver.SSConfig`, which
    a :class:`CBSJob` constructs eagerly.
    """

    lambda_min: float = 0.5
    ring_radii: Optional[Tuple[float, float]] = None
    n_int: int = 32
    annulus_margin: float = 0.0

    def __post_init__(self) -> None:
        if self.ring_radii is not None:
            object.__setattr__(
                self, "ring_radii", tuple(float(r) for r in self.ring_radii)
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "lambda_min": float(self.lambda_min),
            "ring_radii": (
                list(self.ring_radii) if self.ring_radii is not None else None
            ),
            "n_int": int(self.n_int),
            "annulus_margin": float(self.annulus_margin),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "RingSpec":
        allowed = [f.name for f in fields(cls)]
        _check_keys(d, allowed, "RingSpec")
        d = dict(d)
        if d.get("ring_radii") is not None:
            d["ring_radii"] = tuple(d["ring_radii"])
        return cls(**d)


@dataclass(frozen=True)
class ScanSpec:
    """The energy grid plus the SS numerical parameters.

    Exactly one of ``energies`` or ``window`` must be given; the
    remaining fields mirror :class:`repro.ss.solver.SSConfig` minus the
    contour (that is :class:`RingSpec`) and minus execution-only knobs
    (those are :class:`ExecutionSpec`).

    Parameters
    ----------
    energies : tuple of float, optional
        Explicit energy values (any order; de-duplicated and sorted).
    window : (float, float, int), optional
        ``(e_min, e_max, n)`` equidistant grid (paper Fig. 11 style).
    n_mm : int, optional
        Moment degrees ``N_mm``.
    n_rh : int, optional
        Right-hand sides ``N_rh`` (subspace capacity is
        ``n_rh × n_mm``).
    delta : float, optional
        Relative SVD truncation threshold ``δ``.
    linear_solver : str, optional
        Step-1 strategy (``"auto"``, ``"direct"``, ``"bicg"``,
        ``"bicg-batched"``).
    direct_threshold : int, optional
        ``"auto"`` crossover size.
    bicg_tol, bicg_maxiter :
        BiCG stopping rule.
    use_dual_trick : bool, optional
        Reuse dual solutions for the inner circle (paper §3.2).
    quorum_fraction : float or None, optional
        Quorum stopping-rule fraction (``None`` = off).
    jacobi : bool, optional
        Jacobi-precondition BiCG.
    residual_tol : float, optional
        Eigenpair acceptance residual.
    seed : int, optional
        RNG seed for the source block ``V``.
    propagating_tol : float, optional
        ``||λ|-1|`` threshold of the propagating classification.

    Notes
    -----
    For a transport job (:class:`CBSJob` with a :class:`TransportSpec`)
    only the *grid* fields (``energies``/``window``) are consumed; the
    self-energy numerics live on the :class:`TransportSpec` because
    transport rings are shaped differently (wider, low moment degree).
    """

    energies: Optional[Tuple[float, ...]] = None
    window: Optional[Tuple[float, float, int]] = None
    n_mm: int = 8
    n_rh: int = 16
    delta: float = 1e-10
    linear_solver: str = "auto"
    direct_threshold: int = 6000
    bicg_tol: float = 1e-10
    bicg_maxiter: Optional[int] = None
    use_dual_trick: bool = True
    quorum_fraction: Optional[float] = 0.5
    jacobi: bool = False
    residual_tol: float = 1e-6
    seed: Optional[int] = None
    propagating_tol: float = 1e-6

    def __post_init__(self) -> None:
        if (self.energies is None) == (self.window is None):
            raise ConfigurationError(
                f"ScanSpec needs exactly one of energies or window; got "
                f"energies={self.energies!r}, window={self.window!r}"
            )
        if self.energies is not None:
            energies = tuple(float(e) for e in self.energies)
            if not energies:
                raise ConfigurationError("ScanSpec.energies must be non-empty")
            if not all(math.isfinite(e) for e in energies):
                raise ConfigurationError(
                    f"ScanSpec.energies must be finite, got {energies}"
                )
            object.__setattr__(self, "energies", energies)
        if self.window is not None:
            try:
                lo, hi, n = self.window
                window = (float(lo), float(hi), int(n))
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"ScanSpec.window must be (e_min, e_max, n), "
                    f"got {self.window!r}"
                ) from None
            if not (math.isfinite(window[0]) and math.isfinite(window[1])):
                raise ConfigurationError(
                    f"ScanSpec.window bounds must be finite, got {window}"
                )
            if window[2] < 1:
                raise ConfigurationError(
                    f"ScanSpec.window needs n >= 1, got {window[2]}"
                )
            object.__setattr__(self, "window", window)
        if not self.propagating_tol > 0:
            raise ConfigurationError(
                f"propagating_tol must be > 0, got {self.propagating_tol}"
            )

    def grid(self) -> Tuple[float, ...]:
        """The concrete ascending, de-duplicated energy grid.

        Windows expand through ``np.linspace`` so the values (and with
        them the bit-level slice-cache keys) are identical to the legacy
        ``scan_window`` paths.
        """
        if self.energies is not None:
            return tuple(sorted(set(self.energies)))
        import numpy as np

        lo, hi, n = self.window
        return tuple(sorted({float(e) for e in np.linspace(lo, hi, n)}))

    def to_dict(self) -> Dict[str, Any]:
        d = asdict(self)
        d["energies"] = list(self.energies) if self.energies is not None else None
        d["window"] = list(self.window) if self.window is not None else None
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "ScanSpec":
        allowed = [f.name for f in fields(cls)]
        _check_keys(d, allowed, "ScanSpec")
        d = dict(d)
        if d.get("energies") is not None:
            d["energies"] = tuple(d["energies"])
        if d.get("window") is not None:
            d["window"] = tuple(d["window"])
        return cls(**d)


@dataclass(frozen=True)
class ExecutionSpec:
    """How a job runs — never *what* it computes.

    Attributes
    ----------
    mode:
        ``"serial"`` | ``"threads"`` | ``"processes"`` | ``"pool"`` |
        ``"orchestrated"``.  Serial/threads map the energy grid through
        :class:`repro.cbs.CBSCalculator`; processes/pool/orchestrated
        shard it through :class:`repro.cbs.orchestrator.ScanOrchestrator`
        (``"processes"`` with the adaptive policies off by default,
        ``"orchestrated"`` with tuning + refinement on).  ``"pool"`` is
        ``"processes"`` backed by the persistent shared-memory worker
        pool (:class:`repro.parallel.pool.PersistentPool`): workers
        survive across ``compute()`` calls and the Hamiltonian blocks
        ship once via ``multiprocessing.shared_memory`` instead of being
        re-pickled per shard.
    workers:
        Worker count for the chosen executor (``None`` = its default).
    n_shards:
        Shard count for the orchestrated modes (``None`` = worker count).
    warm_start:
        Slice-to-slice warm starting (sequential chains; chunk-local
        inside shards).
    cache_dir:
        Persistent slice-cache root (``None`` disables).  Honored by
        every mode; the context key is physics-only, so cache entries
        are shared across execution modes and energy grids.
    tuning, refine:
        Optional explicit adaptive policies; ``None`` means the mode
        default (enabled for ``"orchestrated"``, disabled otherwise).
    backend:
        Array-backend name from :mod:`repro.backends` running the
        Step-1 hot path (``"numpy"``, ``"numpy-mixed"``, ``"cupy"``
        when installed).  Lives on the execution spec because the
        default is answer-preserving, but a backend that changes
        numerics (``bitwise_numpy = False``) is folded into
        :meth:`CBSJob.cache_context` so its slices never share cache
        entries with full-precision runs.
    """

    mode: str = "serial"
    workers: Optional[int] = None
    n_shards: Optional[int] = None
    warm_start: bool = False
    cache_dir: Optional[str] = None
    tuning: Optional[TuningPolicy] = None
    refine: Optional[RefinePolicy] = None
    backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.mode not in _EXEC_MODES:
            raise ConfigurationError(
                f"ExecutionSpec.mode must be one of {_EXEC_MODES}, "
                f"got {self.mode!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(
                f"ExecutionSpec.workers must be >= 1 or None, "
                f"got {self.workers}"
            )
        if self.n_shards is not None and self.n_shards < 1:
            raise ConfigurationError(
                f"ExecutionSpec.n_shards must be >= 1 or None, "
                f"got {self.n_shards}"
            )
        if self.backend not in available_backends():
            raise ConfigurationError(
                f"unknown array backend {self.backend!r}; "
                f"available backends: {sorted(available_backends())}"
            )
        if isinstance(self.tuning, Mapping):
            object.__setattr__(
                self,
                "tuning",
                _policy_from_dict(TuningPolicy, self.tuning, "TuningPolicy"),
            )
        if isinstance(self.refine, Mapping):
            object.__setattr__(
                self,
                "refine",
                _policy_from_dict(RefinePolicy, self.refine, "RefinePolicy"),
            )

    # -- mode-resolved views ------------------------------------------------

    def resolved_tuning(self) -> TuningPolicy:
        if self.tuning is not None:
            return self.tuning
        if self.mode == "orchestrated":
            return TuningPolicy()
        return TuningPolicy(enabled=False)

    def resolved_refine(self) -> RefinePolicy:
        if self.refine is not None:
            return self.refine
        if self.mode == "orchestrated":
            return RefinePolicy()
        return RefinePolicy(enabled=False)

    def executor_spec(self):
        """The :func:`repro.parallel.executor.make_executor` spec."""
        if self.mode == "serial":
            return None
        if self.mode == "threads":
            return "threads" if self.workers is None else int(self.workers)
        if self.mode == "pool":
            return "pool" if self.workers is None else ("pool", int(self.workers))
        # processes / orchestrated
        if self.workers is None:
            return "processes"
        return ("processes", int(self.workers))

    def to_dict(self) -> Dict[str, Any]:
        d = {
            "mode": self.mode,
            "workers": self.workers,
            "n_shards": self.n_shards,
            "warm_start": bool(self.warm_start),
            "cache_dir": self.cache_dir,
            "tuning": asdict(self.tuning) if self.tuning is not None else None,
            "refine": asdict(self.refine) if self.refine is not None else None,
        }
        # Default-backend jobs keep the exact dict layout (and hashes)
        # they had before the backend seam existed.
        if self.backend != "numpy":
            d["backend"] = self.backend
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "ExecutionSpec":
        allowed = [f.name for f in fields(cls)]
        _check_keys(d, allowed, "ExecutionSpec")
        d = dict(d)
        d["tuning"] = _policy_from_dict(
            TuningPolicy, d.get("tuning"), "ExecutionSpec.tuning"
        )
        d["refine"] = _policy_from_dict(
            RefinePolicy, d.get("refine"), "ExecutionSpec.refine"
        )
        return cls(**d)


@dataclass(frozen=True)
class KParSpec:
    """The transverse-momentum axis of a k∥-resolved workload.

    Attaching a ``KParSpec`` to a :class:`CBSJob` turns its 1D energy
    scan into a product grid over ``ScanSpec × KParSpec``: the system
    builder is resolved once per k∥ point (with the momentum injected
    as the builder parameter named by ``param``), and every engine —
    serial, threads, process-sharded, orchestrated, transport — runs
    each (E, k∥) column of the grid, stamping the slices with their
    momentum.  This is how the paper's 3D/2D leads (Al(100), bundles)
    are scanned: complex bands and electrode self-energies are defined
    per transverse momentum, and the Landauer transmission of such a
    lead is the Brillouin-zone-weighted sum over k∥.

    Momenta are dimensionless transverse Bloch phases (radians; one
    transverse period ↔ ``2π``) — the convention shared by every
    ``k_par``-aware builder (``"square-slab"``, ``"ladder"``,
    ``"al100"``, ``"nanotube"``).

    Parameters
    ----------
    values : tuple of float, optional
        Explicit momenta (finite, distinct; stored ascending).
        Exactly one of ``values`` and ``grid`` must be given.
    grid : int, optional
        Monkhorst-Pack point count: the standard shifted uniform
        sampling ``θ_j = (2j − n − 1)π/n`` with equal weights
        (:func:`repro.transport.monkhorst_pack`).
    weights : tuple of float, optional
        Brillouin-zone weights matching ``values`` one-to-one
        (positive, finite; default: equal weights summing to one).
        Only allowed with ``values`` — a Monkhorst-Pack grid implies
        its own.
    param : str, optional
        Name of the builder keyword receiving the momentum
        (default ``"k_par"``).

    Examples
    --------
    >>> from repro.api import KParSpec
    >>> KParSpec(grid=2).points()
    (-1.5707963267948966, 1.5707963267948966)
    >>> KParSpec(values=(0.0, 1.0)).resolved_weights()
    (0.5, 0.5)
    """

    values: Optional[Tuple[float, ...]] = None
    grid: Optional[int] = None
    weights: Optional[Tuple[float, ...]] = None
    param: str = "k_par"

    def __post_init__(self) -> None:
        if (self.values is None) == (self.grid is None):
            raise ConfigurationError(
                f"KParSpec needs exactly one of values or grid; got "
                f"values={self.values!r}, grid={self.grid!r}"
            )
        if not isinstance(self.param, str) or not self.param:
            raise ConfigurationError(
                f"KParSpec.param must be a non-empty string, "
                f"got {self.param!r}"
            )
        if self.grid is not None:
            if self.weights is not None:
                raise ConfigurationError(
                    "KParSpec.weights are implied by the Monkhorst-Pack "
                    "grid; pass them only with explicit values"
                )
            grid = int(self.grid)
            if grid < 1:
                raise ConfigurationError(
                    f"KParSpec.grid must be >= 1, got {self.grid}"
                )
            object.__setattr__(self, "grid", grid)
            return
        values = tuple(float(k) for k in self.values)
        if not values:
            raise ConfigurationError("KParSpec.values must be non-empty")
        if not all(math.isfinite(k) for k in values):
            raise ConfigurationError(
                f"KParSpec.values must be finite, got {values}"
            )
        if len(set(values)) != len(values):
            raise ConfigurationError(
                f"KParSpec.values must be distinct, got {values} "
                f"(duplicate momenta make the weights ambiguous)"
            )
        if self.weights is not None:
            weights = tuple(float(w) for w in self.weights)
            if len(weights) != len(values):
                raise ConfigurationError(
                    f"KParSpec.weights length {len(weights)} does not "
                    f"match {len(values)} values (mismatched k∥ axes)"
                )
            if not all(math.isfinite(w) and w > 0 for w in weights):
                raise ConfigurationError(
                    f"KParSpec.weights must be positive and finite, "
                    f"got {weights}"
                )
        else:
            weights = tuple(1.0 / len(values) for _ in values)
        # Store ascending with weights permuted alongside, so the job's
        # canonical form (and its hashes) is order-independent.
        order = sorted(range(len(values)), key=lambda i: values[i])
        object.__setattr__(
            self, "values", tuple(values[i] for i in order)
        )
        object.__setattr__(
            self, "weights", tuple(weights[i] for i in order)
        )

    def points(self) -> Tuple[float, ...]:
        """The concrete ascending k∥ grid."""
        if self.values is not None:
            return self.values
        from repro.transport.scan import monkhorst_pack

        pts, _w = monkhorst_pack(self.grid)
        return tuple(float(k) for k in pts)

    def resolved_weights(self) -> Tuple[float, ...]:
        """The Brillouin-zone weights matching :meth:`points`."""
        if self.values is not None:
            return self.weights
        from repro.transport.scan import monkhorst_pack

        _pts, w = monkhorst_pack(self.grid)
        return tuple(float(x) for x in w)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "values": (
                list(self.values) if self.values is not None else None
            ),
            "grid": self.grid,
            "weights": (
                list(self.weights) if self.weights is not None else None
            ),
            "param": self.param,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "KParSpec":
        allowed = [f.name for f in fields(cls)]
        _check_keys(d, allowed, "KParSpec")
        d = dict(d)
        if d.get("values") is not None:
            d["values"] = tuple(d["values"])
        if d.get("weights") is not None:
            d["weights"] = tuple(d["weights"])
        return cls(**d)


@dataclass(frozen=True)
class MapSpec:
    """The dense-map surrogate over a ``ScanSpec × KParSpec`` grid.

    Attaching a ``MapSpec`` to a :class:`CBSJob` (which must also carry
    a :class:`KParSpec`) routes it to the ``"map"`` engine
    (:class:`repro.maps.MapSurrogate`): instead of solving every
    (E, k∥) pixel of the product grid, a coarse subset is solved, the
    grid is adaptively refined in 2D where neighboring pixels disagree
    (mode-count / ``min |Im k|`` discontinuities — band edges), and the
    remaining pixels are filled by band interpolation between solved
    neighbors with a per-pixel error certificate.  Pixels whose
    certificate exceeds ``tolerance`` are solved for real instead.

    Parameters
    ----------
    coarse_e : int, optional
        Stride of the initial coarse sampling along the energy axis
        (every ``coarse_e``-th grid energy is solved; boundary rows
        always are).  ``1`` solves the full axis.
    coarse_k : int, optional
        Stride along the k∥ axis (boundary columns always solved).
    tolerance : float, optional
        Per-pixel error budget on mode positions (max matched
        ``|Δk|``); an interpolated pixel whose certificate exceeds it
        is solved for real.
    safety : float, optional
        Multiplier applied to measured probe errors when forming the
        certificate — a probe samples the segment's true error at one
        point, so the certificate is ``safety ×`` the probe error.
    max_rounds : int, optional
        Cap on 2D bisection refinement rounds (the min-interval floor
        is grid adjacency; this bounds the rounds on genuinely
        discontinuous edges).
    max_refine_pixels : int, optional
        Cap on total pixels inserted by 2D refinement.

    Notes
    -----
    A ``MapSpec`` never changes what a *solved* pixel is — solved
    pixels share :class:`repro.io.slice_cache.SliceCache` entries (and
    :meth:`CBSJob.cache_context` keys) with plain scans.  It does
    determine the *interpolated* pixels, so it is folded into the
    cache context only for those
    (:meth:`CBSJob.cache_context` with ``interpolated=True``) — the
    "folded in only when it changes physics output" rule.
    """

    coarse_e: int = 4
    coarse_k: int = 2
    tolerance: float = 1e-3
    safety: float = 4.0
    max_rounds: int = 6
    max_refine_pixels: int = 512

    def __post_init__(self) -> None:
        if int(self.coarse_e) < 1 or int(self.coarse_k) < 1:
            raise ConfigurationError(
                f"MapSpec coarse strides must be >= 1, got "
                f"coarse_e={self.coarse_e}, coarse_k={self.coarse_k}"
            )
        object.__setattr__(self, "coarse_e", int(self.coarse_e))
        object.__setattr__(self, "coarse_k", int(self.coarse_k))
        if not (math.isfinite(self.tolerance) and self.tolerance > 0):
            raise ConfigurationError(
                f"MapSpec.tolerance must be a positive finite float, "
                f"got {self.tolerance!r}"
            )
        if not (math.isfinite(self.safety) and self.safety >= 1.0):
            raise ConfigurationError(
                f"MapSpec.safety must be >= 1, got {self.safety!r}"
            )
        if int(self.max_rounds) < 0 or int(self.max_refine_pixels) < 0:
            raise ConfigurationError(
                f"MapSpec.max_rounds/max_refine_pixels must be >= 0, got "
                f"{self.max_rounds}/{self.max_refine_pixels}"
            )
        object.__setattr__(self, "max_rounds", int(self.max_rounds))
        object.__setattr__(
            self, "max_refine_pixels", int(self.max_refine_pixels)
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "coarse_e": self.coarse_e,
            "coarse_k": self.coarse_k,
            "tolerance": float(self.tolerance),
            "safety": float(self.safety),
            "max_rounds": self.max_rounds,
            "max_refine_pixels": self.max_refine_pixels,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "MapSpec":
        allowed = [f.name for f in fields(cls)]
        _check_keys(d, allowed, "MapSpec")
        return cls(**dict(d))


@dataclass(frozen=True)
class TransportSpec:
    """The transport workload: electrode self-energies + transmission.

    Attaching a ``TransportSpec`` to a :class:`CBSJob` turns the job
    from a CBS scan into a two-probe Landauer calculation over the same
    energy grid: at each energy the lead's retarded self-energies
    ``Σ_L/Σ_R`` are computed (from the SS contour moments by default,
    or by Sancho-Rubio decimation) and the Caroli transmission of the
    device region is evaluated.  :func:`repro.api.compute` then returns
    a :class:`repro.transport.TransportResult` instead of a
    ``CBSResult``.

    Parameters
    ----------
    eta : float, optional
        Positive imaginary energy ``η`` of the retarded prescription
        (both engines evaluate at ``E + iη``).
    n_cells : int, optional
        Unit cells in the central device region.
    device : SystemSpec or mapping, optional
        Registry spec of the device cell; default: the job's lead
        system (an ideal wire).  Must share the lead's block dimension.
    onsite_shift : float, optional
        Uniform onsite shift of the device cells (a square tunnel
        barrier).
    method : {"ss", "decimation"}, optional
        Self-energy engine.
    ring_radius : float or None, optional
        Outer radius of the transport ring ``1/R < |λ| < R``;
        ``None`` auto-sizes it from Cauchy root bounds per energy.
    n_int : int, optional
        Quadrature points per circle of the transport ring.
    n_mm : int, optional
        Moment degrees (kept low — transport rings are wide and Hankel
        conditioning degrades like ``R^{2 N_mm - 1}``).
    n_rh : int or None, optional
        Source-block width; ``None`` auto-sizes to exceed the ``2N``
        possible in-ring eigenpairs.
    residual_tol : float, optional
        Eigenpair acceptance residual of the self-energy solve.
    seed : int or None, optional
        RNG seed of the transport source block.

    Examples
    --------
    >>> from repro.api import CBSJob, ScanSpec, SystemSpec, TransportSpec
    >>> job = CBSJob(
    ...     system=SystemSpec("chain", {"hopping": -1.0}),
    ...     scan=ScanSpec(window=(-1.5, 1.5, 7)),
    ...     transport=TransportSpec(eta=1e-7, n_cells=2),
    ... )
    >>> job.engine()
    'transport'
    """

    eta: float = 1e-6
    n_cells: int = 1
    device: Optional[SystemSpec] = None
    onsite_shift: float = 0.0
    method: str = "ss"
    ring_radius: Optional[float] = None
    n_int: int = 64
    n_mm: int = 2
    n_rh: Optional[int] = None
    residual_tol: float = 1e-8
    seed: Optional[int] = 7

    def __post_init__(self) -> None:
        if self.method not in ("ss", "decimation"):
            raise ConfigurationError(
                f"TransportSpec.method must be 'ss' or 'decimation', "
                f"got {self.method!r}"
            )
        if self.n_cells < 1:
            raise ConfigurationError(
                f"TransportSpec.n_cells must be >= 1, got {self.n_cells}"
            )
        if self.device is not None and not isinstance(
            self.device, SystemSpec
        ):
            object.__setattr__(
                self,
                "device",
                _coerce(self.device, SystemSpec, "TransportSpec.device"),
            )
        self.self_energy_config()  # eager validation (eta, ring, n_rh…)

    def self_energy_config(self, backend: str = "numpy"):
        """The validated :class:`repro.transport.SelfEnergyConfig` this
        spec describes.  ``backend`` (from the job's execution spec)
        selects the array backend of the underlying SS solves."""
        from repro.transport.selfenergy import SelfEnergyConfig

        return SelfEnergyConfig(
            eta=self.eta,
            n_int=self.n_int,
            n_mm=self.n_mm,
            n_rh=self.n_rh,
            ring_radius=self.ring_radius,
            residual_tol=self.residual_tol,
            seed=self.seed,
            backend=backend,
        )

    def to_dict(self) -> Dict[str, Any]:
        d = {f.name: getattr(self, f.name) for f in fields(self)}
        d["device"] = (
            self.device.to_dict() if self.device is not None else None
        )
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "TransportSpec":
        allowed = [f.name for f in fields(cls)]
        _check_keys(d, allowed, "TransportSpec")
        d = dict(d)
        if d.get("device") is not None:
            d["device"] = SystemSpec.from_dict(d["device"])
        return cls(**d)


# ---------------------------------------------------------------------------
# the job
# ---------------------------------------------------------------------------


def _coerce(value, cls, where: str):
    if isinstance(value, cls):
        return value
    if isinstance(value, Mapping):
        return cls.from_dict(value)
    raise ConfigurationError(
        f"{where} must be a {cls.__name__} or a mapping, got {value!r}"
    )


@dataclass(frozen=True)
class CBSJob:
    """One declarative workload: system × ring × scan × execution.

    Construction validates everything eagerly (including the derived
    :class:`repro.ss.solver.SSConfig`), so an invalid job never reaches
    an engine.  Dicts are accepted for any part and coerced, which
    makes literal job descriptions convenient.

    Parameters
    ----------
    system : SystemSpec or mapping
        Which physics — a registered system name plus builder params.
    scan : ScanSpec or mapping
        Which energies and which SS numerics.
    ring : RingSpec or mapping, optional
        Which eigenvalue annulus (CBS jobs; transport jobs auto-size
        their own ring).
    execution : ExecutionSpec or mapping, optional
        How to run — serial/threads/processes/orchestrated, warm
        starts, the persistent slice cache.
    transport : TransportSpec or mapping, optional
        When present, the job computes electrode self-energies and the
        Landauer transmission over the scan grid instead of the CBS
        (see :class:`TransportSpec`).
    kpar : KParSpec or mapping, optional
        When present, the job runs over the ``ScanSpec × KParSpec``
        product grid — one system build and one energy column per
        transverse momentum — and the result slices carry the k∥ axis
        (see :class:`KParSpec`).  Composes with ``transport``:
        a transport job with a ``kpar`` computes the k∥-resolved and
        Brillouin-zone-summed transmission.
    map : MapSpec or mapping, optional
        When present (requires ``kpar``; incompatible with
        ``transport``), the (E, k∥) product grid is served by the
        adaptive map surrogate instead of being solved densely: a
        coarse pixel subset is solved, band edges are refined in 2D,
        and the rest is interpolated with per-pixel error certificates
        (see :class:`MapSpec`).  :func:`repro.api.compute` returns a
        :class:`repro.maps.MapResult`.

    Examples
    --------
    >>> from repro.api import CBSJob
    >>> job = CBSJob(system={"name": "ladder", "params": {"width": 4}},
    ...              scan={"window": [-2.0, 2.0, 41], "n_mm": 4,
    ...                    "n_rh": 4, "seed": 7})
    >>> job.engine()
    'scan'
    >>> CBSJob.from_json(job.to_json()) == job
    True
    """

    system: SystemSpec
    scan: ScanSpec
    ring: RingSpec = RingSpec()
    execution: ExecutionSpec = ExecutionSpec()
    transport: Optional[TransportSpec] = None
    kpar: Optional[KParSpec] = None
    map: Optional[MapSpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "system", _coerce(self.system, SystemSpec, "CBSJob.system")
        )
        object.__setattr__(
            self, "scan", _coerce(self.scan, ScanSpec, "CBSJob.scan")
        )
        object.__setattr__(
            self, "ring", _coerce(self.ring, RingSpec, "CBSJob.ring")
        )
        object.__setattr__(
            self,
            "execution",
            _coerce(self.execution, ExecutionSpec, "CBSJob.execution"),
        )
        if self.transport is not None and not isinstance(
            self.transport, TransportSpec
        ):
            object.__setattr__(
                self,
                "transport",
                _coerce(self.transport, TransportSpec, "CBSJob.transport"),
            )
        if self.kpar is not None and not isinstance(self.kpar, KParSpec):
            object.__setattr__(
                self,
                "kpar",
                _coerce(self.kpar, KParSpec, "CBSJob.kpar"),
            )
        if self.map is not None and not isinstance(self.map, MapSpec):
            object.__setattr__(
                self,
                "map",
                _coerce(self.map, MapSpec, "CBSJob.map"),
            )
        if self.map is not None:
            if self.kpar is None:
                raise ConfigurationError(
                    "CBSJob.map needs a KParSpec: the map surrogate "
                    "interpolates over the (E, k∥) product grid, which "
                    "only exists when the job carries a kpar axis"
                )
            if self.transport is not None:
                raise ConfigurationError(
                    "CBSJob.map is incompatible with transport: the "
                    "surrogate interpolates CBS mode positions, not "
                    "self-energies/transmissions"
                )
        self.ss_config()  # eager validation of the numerical parameters
        if self.kpar is not None and self.kpar.param in self.system.params:
            raise ConfigurationError(
                f"system params already fix {self.kpar.param!r}="
                f"{self.system.params[self.kpar.param]!r}; a KParSpec "
                f"sweeps that parameter — drop it from SystemSpec.params"
            )

    # -- derived views -------------------------------------------------------

    def energies(self) -> Tuple[float, ...]:
        """Ascending de-duplicated energy grid of this job."""
        return self.scan.grid()

    def ss_config(self) -> SSConfig:
        """The :class:`SSConfig` this job describes (validated)."""
        return SSConfig(
            n_int=self.ring.n_int,
            n_mm=self.scan.n_mm,
            n_rh=self.scan.n_rh,
            delta=self.scan.delta,
            lambda_min=self.ring.lambda_min,
            ring_radii=self.ring.ring_radii,
            linear_solver=self.scan.linear_solver,
            direct_threshold=self.scan.direct_threshold,
            bicg_tol=self.scan.bicg_tol,
            bicg_maxiter=self.scan.bicg_maxiter,
            use_dual_trick=self.scan.use_dual_trick,
            quorum_fraction=self.scan.quorum_fraction,
            jacobi=self.scan.jacobi,
            residual_tol=self.scan.residual_tol,
            annulus_margin=self.ring.annulus_margin,
            seed=self.scan.seed,
            backend=self.execution.backend,
        )

    def engine(self) -> str:
        """Which backend :func:`repro.api.compute` routes this job to:
        ``"solver"`` (one :class:`SSHankelSolver` call), ``"scan"``
        (:class:`CBSCalculator`), ``"orchestrator"``
        (:class:`ScanOrchestrator`), or ``"transport"``
        (:class:`repro.transport.TransportCalculator` /
        :class:`~repro.transport.TransportScanner`), or ``"map"``
        (:class:`repro.maps.MapSurrogate` — jobs carrying a
        :class:`MapSpec`)."""
        if self.transport is not None:
            return "transport"
        if self.map is not None:
            return "map"
        if self.execution.mode in ("processes", "pool", "orchestrated"):
            return "orchestrator"
        if (
            self.kpar is None
            and self.execution.mode == "serial"
            and len(self.energies()) == 1
            and not self.execution.warm_start
            and self.execution.cache_dir is None
        ):
            return "solver"
        return "scan"

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A pure-JSON-types dict (lists, not tuples) round-tripping
        through :meth:`from_dict`.

        The ``"transport"``/``"kpar"``/``"map"`` keys appear only when
        the job carries the corresponding spec, so plain CBS jobs keep
        the exact dict layout (and hashes) they had before those
        subsystems existed.
        """
        d = {
            "spec_version": JOB_SPEC_VERSION,
            "system": self.system.to_dict(),
            "ring": self.ring.to_dict(),
            "scan": self.scan.to_dict(),
            "execution": self.execution.to_dict(),
        }
        if self.transport is not None:
            d["transport"] = self.transport.to_dict()
        if self.kpar is not None:
            d["kpar"] = self.kpar.to_dict()
        if self.map is not None:
            d["map"] = self.map.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "CBSJob":
        _check_keys(
            d,
            ("spec_version", "system", "ring", "scan", "execution",
             "transport", "kpar", "map"),
            "CBSJob",
        )
        version = d.get("spec_version", JOB_SPEC_VERSION)
        if version != JOB_SPEC_VERSION:
            raise ConfigurationError(
                f"unsupported CBSJob spec_version {version!r}; this build "
                f"reads version {JOB_SPEC_VERSION}"
            )
        if "system" not in d or "scan" not in d:
            raise ConfigurationError(
                "CBSJob dict needs at least 'system' and 'scan'"
            )
        transport = d.get("transport")
        kpar = d.get("kpar")
        map_spec = d.get("map")
        return cls(
            system=SystemSpec.from_dict(d["system"]),
            scan=ScanSpec.from_dict(d["scan"]),
            ring=RingSpec.from_dict(d.get("ring", {})),
            execution=ExecutionSpec.from_dict(d.get("execution", {})),
            transport=(
                TransportSpec.from_dict(transport)
                if transport is not None
                else None
            ),
            kpar=(
                KParSpec.from_dict(kpar) if kpar is not None else None
            ),
            map=(
                MapSpec.from_dict(map_spec)
                if map_spec is not None
                else None
            ),
        )

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, no whitespace — the hash input."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "CBSJob":
        return cls.from_dict(json.loads(text))

    # -- identities ----------------------------------------------------------

    def job_hash(self) -> str:
        """Canonical identity of the whole job (provenance key)."""
        h = hashlib.sha256()
        h.update(b"cbs-job-v%d:" % JOB_SPEC_VERSION)
        h.update(self.to_json().encode("utf-8"))
        return h.hexdigest()[:24]

    def cache_context(
        self, k_par: Optional[float] = None, interpolated: bool = False
    ) -> str:
        """Slice-cache context: a hash of only the answer-determining
        parts of the job.

        For k∥-resolved workloads the cache is keyed **per transverse
        momentum**: pass the column's ``k_par`` and its value is folded
        into the payload (the blocks differ per k∥, so columns must
        never share entries).  ``cache_context()`` with no argument is
        the plain-job context and is byte-for-byte what it was before
        the k∥ axis existed.

        ``interpolated=True`` is the **map-surrogate** namespace: pixels
        the surrogate *predicted* rather than solved.  Their values
        depend on the :class:`MapSpec` (coarse strides, tolerance,
        safety factor), so the spec is folded into the payload — two
        maps with different settings never share predictions, and a
        plain scan (which never passes ``interpolated=True``) can never
        read a predicted pixel as a real solve.  Solved map pixels use
        the ordinary context and are shared with plain scans.

        Execution details (mode, workers, shards, warm starts, the cache
        directory itself) change how fast slices arrive, never what they
        are — except the tuning policy, which changes the effective
        per-slice solver parameters and is therefore folded in via the
        *engine-effective* value: only the orchestrator engine tunes, so
        solver/scan-engine jobs always key under the disabled policy
        regardless of what ``execution.tuning`` says (those engines
        ignore it — keying on the ignored value would let untuned slices
        poison a tuned run's cache).  The energy grid is excluded too:
        slices are keyed per-energy *inside* the context, so extending
        or refining a scan window reuses every energy already solved.
        Two jobs that differ only in execution or grid share cache
        entries; a tuned and an untuned run never do.

        Transport jobs key on exactly what determines ``Σ``/``T`` — the
        system plus the :class:`TransportSpec` — so varying CBS-only
        numerics (ring, moment sizes) never fragments a transport
        cache, and a transport context can never collide with a CBS
        context.

        The array backend is execution-shaped but folded in *only*
        when it changes the numerics (``bitwise_numpy = False``, e.g.
        ``"numpy-mixed"``): its slices must never share entries with
        full-precision runs, while ``backend="numpy"`` keys
        byte-identically to the pre-backend layout.
        """
        if self.transport is not None:
            payload = {
                "system": self.system.to_dict(),
                "transport": self.transport.to_dict(),
            }
            if not get_backend(self.execution.backend).bitwise_numpy:
                payload["backend"] = self.execution.backend
            if k_par is not None:
                payload["k_par"] = float(k_par)
            h = hashlib.sha256()
            h.update(b"transport-job-cache-v%d:" % JOB_SPEC_VERSION)
            h.update(
                json.dumps(
                    payload, sort_keys=True, separators=(",", ":")
                ).encode("utf-8")
            )
            return h.hexdigest()[:24]
        scan_physics = self.scan.to_dict()
        scan_physics.pop("energies")
        scan_physics.pop("window")
        effective_tuning = (
            self.execution.resolved_tuning()
            if self.engine() == "orchestrator"
            else TuningPolicy(enabled=False)
        )
        if not effective_tuning.enabled:
            # All disabled policies behave identically; key them equally.
            effective_tuning = TuningPolicy(enabled=False)
        payload = {
            "system": self.system.to_dict(),
            "ring": self.ring.to_dict(),
            "scan": scan_physics,
            "tuning": asdict(effective_tuning),
        }
        # A backend that solves in different arithmetic produces
        # different slices; fold it in.  ``"numpy"`` (and any other
        # bitwise-equivalent backend) keys byte-identically to the
        # pre-backend layout.
        if not get_backend(self.execution.backend).bitwise_numpy:
            payload["backend"] = self.execution.backend
        if k_par is not None:
            payload["k_par"] = float(k_par)
        if interpolated and self.map is not None:
            payload["map"] = self.map.to_dict()
        h = hashlib.sha256()
        h.update(b"cbs-job-cache-v%d:" % JOB_SPEC_VERSION)
        h.update(
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
                "utf-8"
            )
        )
        return h.hexdigest()[:24]


__all__: List[str] = [
    "JOB_SPEC_VERSION",
    "SystemSpec",
    "RingSpec",
    "ScanSpec",
    "ExecutionSpec",
    "TransportSpec",
    "KParSpec",
    "MapSpec",
    "CBSJob",
]
