"""The declarative CBS workload spec: :class:`CBSJob` and its parts.

Every workload in the paper is one shape — *solve the ring QEP for
system S over energies E with Sakurai-Sugiura parameters P* — and a
:class:`CBSJob` is exactly that sentence as a frozen, validated,
fully-serializable value:

* :class:`SystemSpec` — *which physics*: a registered builder name plus
  its parameters (resolved through :mod:`repro.api.registry`);
* :class:`RingSpec` — *which eigenvalue ring*: the annulus contour and
  its quadrature;
* :class:`ScanSpec` — *which energies and which numerics*: the energy
  grid (explicit list or equidistant window) and the SS subspace /
  Step-1 solver parameters;
* :class:`ExecutionSpec` — *how to run it*: serial, threads, processes,
  or the fully orchestrated adaptive path, plus warm-start policy and
  the persistent slice cache.

``to_dict()``/``from_dict()`` round-trip through pure JSON types, and
two derived hashes key everything downstream:

* :meth:`CBSJob.job_hash` — canonical SHA-256 of the *whole* spec; the
  provenance identity recorded in every :class:`repro.cbs.CBSResult`.
* :meth:`CBSJob.cache_context` — hash of only the answer-determining
  parts (system + ring + scan numerics + effective tuning policy);
  execution details (worker counts, shard counts, streaming) are
  excluded so re-running the same physics under a different executor
  reuses the same :class:`repro.io.slice_cache.SliceCache` entries.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field, fields
from types import MappingProxyType
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.cbs.orchestrator import RefinePolicy, TuningPolicy
from repro.errors import ConfigurationError
from repro.ss.solver import SSConfig

#: Bump when the serialized job layout changes incompatibly.
JOB_SPEC_VERSION = 1

_EXEC_MODES = ("serial", "threads", "processes", "orchestrated")


def _check_keys(d: Mapping[str, Any], allowed, where: str) -> None:
    unknown = sorted(set(d) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"unknown key(s) {unknown} in {where}; allowed: {sorted(allowed)}"
        )


def _policy_from_dict(cls, d: Optional[Mapping[str, Any]], where: str):
    if d is None:
        return None
    allowed = [f.name for f in fields(cls)]
    _check_keys(d, allowed, where)
    return cls(**d)


# ---------------------------------------------------------------------------
# the four spec parts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SystemSpec:
    """A named physical system: registry name + builder parameters.

    ``params`` is stored as a read-only mapping (a private copy behind a
    :class:`types.MappingProxyType`), so a job really is frozen: mutating
    ``job.system.params`` after construction raises instead of silently
    desynchronizing the job from hashes computed earlier.
    """

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError(
                f"SystemSpec.name must be a non-empty string, got {self.name!r}"
            )
        params = dict(self.params)
        for key in params:
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"SystemSpec.params keys must be strings, got {key!r}"
                )
        object.__setattr__(self, "params", MappingProxyType(params))

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash would choke on the mapping;
        # hash the canonical JSON form instead (params are JSON values).
        return hash(
            (self.name, json.dumps(dict(self.params), sort_keys=True,
                                   default=str))
        )

    # MappingProxyType does not pickle; ship the plain dict across
    # process boundaries and rewrap on the other side.
    def __getstate__(self):
        return {"name": self.name, "params": dict(self.params)}

    def __setstate__(self, state) -> None:
        object.__setattr__(self, "name", state["name"])
        object.__setattr__(
            self, "params", MappingProxyType(dict(state["params"]))
        )

    def build(self):
        """Resolve to a :class:`repro.qep.blocks.BlockTriple`."""
        from repro.api.registry import resolve_system

        return resolve_system(self.name, self.params)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "SystemSpec":
        _check_keys(d, ("name", "params"), "SystemSpec")
        return cls(name=d.get("name", ""), params=d.get("params", {}))


@dataclass(frozen=True)
class RingSpec:
    """The target eigenvalue annulus and its quadrature.

    ``lambda_min`` describes the paper's reciprocal ring
    ``λ_min < |λ| < 1/λ_min``; ``ring_radii`` overrides it with explicit
    ``(r_in, r_out)`` radii (non-reciprocal rings solve all ``2 N_int``
    systems).  Validation is delegated to :class:`SSConfig`.
    """

    lambda_min: float = 0.5
    ring_radii: Optional[Tuple[float, float]] = None
    n_int: int = 32
    annulus_margin: float = 0.0

    def __post_init__(self) -> None:
        if self.ring_radii is not None:
            object.__setattr__(
                self, "ring_radii", tuple(float(r) for r in self.ring_radii)
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "lambda_min": float(self.lambda_min),
            "ring_radii": (
                list(self.ring_radii) if self.ring_radii is not None else None
            ),
            "n_int": int(self.n_int),
            "annulus_margin": float(self.annulus_margin),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "RingSpec":
        allowed = [f.name for f in fields(cls)]
        _check_keys(d, allowed, "RingSpec")
        d = dict(d)
        if d.get("ring_radii") is not None:
            d["ring_radii"] = tuple(d["ring_radii"])
        return cls(**d)


@dataclass(frozen=True)
class ScanSpec:
    """The energy grid plus the SS numerical parameters.

    Exactly one of ``energies`` (explicit values) or ``window``
    (``(e_min, e_max, n)`` equidistant grid, paper Fig. 11 style) must
    be given.  The remaining fields mirror :class:`SSConfig` minus the
    contour (that is :class:`RingSpec`) and minus execution-only knobs
    (those are :class:`ExecutionSpec`).
    """

    energies: Optional[Tuple[float, ...]] = None
    window: Optional[Tuple[float, float, int]] = None
    n_mm: int = 8
    n_rh: int = 16
    delta: float = 1e-10
    linear_solver: str = "auto"
    direct_threshold: int = 6000
    bicg_tol: float = 1e-10
    bicg_maxiter: Optional[int] = None
    use_dual_trick: bool = True
    quorum_fraction: Optional[float] = 0.5
    jacobi: bool = False
    residual_tol: float = 1e-6
    seed: Optional[int] = None
    propagating_tol: float = 1e-6

    def __post_init__(self) -> None:
        if (self.energies is None) == (self.window is None):
            raise ConfigurationError(
                f"ScanSpec needs exactly one of energies or window; got "
                f"energies={self.energies!r}, window={self.window!r}"
            )
        if self.energies is not None:
            energies = tuple(float(e) for e in self.energies)
            if not energies:
                raise ConfigurationError("ScanSpec.energies must be non-empty")
            if not all(math.isfinite(e) for e in energies):
                raise ConfigurationError(
                    f"ScanSpec.energies must be finite, got {energies}"
                )
            object.__setattr__(self, "energies", energies)
        if self.window is not None:
            try:
                lo, hi, n = self.window
                window = (float(lo), float(hi), int(n))
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"ScanSpec.window must be (e_min, e_max, n), "
                    f"got {self.window!r}"
                ) from None
            if not (math.isfinite(window[0]) and math.isfinite(window[1])):
                raise ConfigurationError(
                    f"ScanSpec.window bounds must be finite, got {window}"
                )
            if window[2] < 1:
                raise ConfigurationError(
                    f"ScanSpec.window needs n >= 1, got {window[2]}"
                )
            object.__setattr__(self, "window", window)
        if not self.propagating_tol > 0:
            raise ConfigurationError(
                f"propagating_tol must be > 0, got {self.propagating_tol}"
            )

    def grid(self) -> Tuple[float, ...]:
        """The concrete ascending, de-duplicated energy grid.

        Windows expand through ``np.linspace`` so the values (and with
        them the bit-level slice-cache keys) are identical to the legacy
        ``scan_window`` paths.
        """
        if self.energies is not None:
            return tuple(sorted(set(self.energies)))
        import numpy as np

        lo, hi, n = self.window
        return tuple(sorted({float(e) for e in np.linspace(lo, hi, n)}))

    def to_dict(self) -> Dict[str, Any]:
        d = asdict(self)
        d["energies"] = list(self.energies) if self.energies is not None else None
        d["window"] = list(self.window) if self.window is not None else None
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "ScanSpec":
        allowed = [f.name for f in fields(cls)]
        _check_keys(d, allowed, "ScanSpec")
        d = dict(d)
        if d.get("energies") is not None:
            d["energies"] = tuple(d["energies"])
        if d.get("window") is not None:
            d["window"] = tuple(d["window"])
        return cls(**d)


@dataclass(frozen=True)
class ExecutionSpec:
    """How a job runs — never *what* it computes.

    Attributes
    ----------
    mode:
        ``"serial"`` | ``"threads"`` | ``"processes"`` | ``"orchestrated"``.
        Serial/threads map the energy grid through
        :class:`repro.cbs.CBSCalculator`; processes/orchestrated shard it
        through :class:`repro.cbs.orchestrator.ScanOrchestrator`
        (``"processes"`` with the adaptive policies off by default,
        ``"orchestrated"`` with tuning + refinement on).
    workers:
        Worker count for the chosen executor (``None`` = its default).
    n_shards:
        Shard count for the orchestrated modes (``None`` = worker count).
    warm_start:
        Slice-to-slice warm starting (sequential chains; chunk-local
        inside shards).
    cache_dir:
        Persistent slice-cache root (``None`` disables).  Honored by
        every mode; the context key is physics-only, so cache entries
        are shared across execution modes and energy grids.
    tuning, refine:
        Optional explicit adaptive policies; ``None`` means the mode
        default (enabled for ``"orchestrated"``, disabled otherwise).
    """

    mode: str = "serial"
    workers: Optional[int] = None
    n_shards: Optional[int] = None
    warm_start: bool = False
    cache_dir: Optional[str] = None
    tuning: Optional[TuningPolicy] = None
    refine: Optional[RefinePolicy] = None

    def __post_init__(self) -> None:
        if self.mode not in _EXEC_MODES:
            raise ConfigurationError(
                f"ExecutionSpec.mode must be one of {_EXEC_MODES}, "
                f"got {self.mode!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(
                f"ExecutionSpec.workers must be >= 1 or None, "
                f"got {self.workers}"
            )
        if self.n_shards is not None and self.n_shards < 1:
            raise ConfigurationError(
                f"ExecutionSpec.n_shards must be >= 1 or None, "
                f"got {self.n_shards}"
            )
        if isinstance(self.tuning, Mapping):
            object.__setattr__(
                self,
                "tuning",
                _policy_from_dict(TuningPolicy, self.tuning, "TuningPolicy"),
            )
        if isinstance(self.refine, Mapping):
            object.__setattr__(
                self,
                "refine",
                _policy_from_dict(RefinePolicy, self.refine, "RefinePolicy"),
            )

    # -- mode-resolved views ------------------------------------------------

    def resolved_tuning(self) -> TuningPolicy:
        if self.tuning is not None:
            return self.tuning
        if self.mode == "orchestrated":
            return TuningPolicy()
        return TuningPolicy(enabled=False)

    def resolved_refine(self) -> RefinePolicy:
        if self.refine is not None:
            return self.refine
        if self.mode == "orchestrated":
            return RefinePolicy()
        return RefinePolicy(enabled=False)

    def executor_spec(self):
        """The :func:`repro.parallel.executor.make_executor` spec."""
        if self.mode == "serial":
            return None
        if self.mode == "threads":
            return "threads" if self.workers is None else int(self.workers)
        # processes / orchestrated
        if self.workers is None:
            return "processes"
        return ("processes", int(self.workers))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "workers": self.workers,
            "n_shards": self.n_shards,
            "warm_start": bool(self.warm_start),
            "cache_dir": self.cache_dir,
            "tuning": asdict(self.tuning) if self.tuning is not None else None,
            "refine": asdict(self.refine) if self.refine is not None else None,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "ExecutionSpec":
        allowed = [f.name for f in fields(cls)]
        _check_keys(d, allowed, "ExecutionSpec")
        d = dict(d)
        d["tuning"] = _policy_from_dict(
            TuningPolicy, d.get("tuning"), "ExecutionSpec.tuning"
        )
        d["refine"] = _policy_from_dict(
            RefinePolicy, d.get("refine"), "ExecutionSpec.refine"
        )
        return cls(**d)


# ---------------------------------------------------------------------------
# the job
# ---------------------------------------------------------------------------


def _coerce(value, cls, where: str):
    if isinstance(value, cls):
        return value
    if isinstance(value, Mapping):
        return cls.from_dict(value)
    raise ConfigurationError(
        f"{where} must be a {cls.__name__} or a mapping, got {value!r}"
    )


@dataclass(frozen=True)
class CBSJob:
    """One declarative CBS workload: system × ring × scan × execution.

    Construction validates everything eagerly (including the derived
    :class:`SSConfig`), so an invalid job never reaches an engine.
    Dicts are accepted for any part and coerced, which makes literal
    job descriptions convenient::

        job = CBSJob(system={"name": "ladder", "params": {"width": 4}},
                     scan={"window": [-2.0, 2.0, 41], "n_mm": 4, "n_rh": 4,
                           "seed": 7})
    """

    system: SystemSpec
    scan: ScanSpec
    ring: RingSpec = RingSpec()
    execution: ExecutionSpec = ExecutionSpec()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "system", _coerce(self.system, SystemSpec, "CBSJob.system")
        )
        object.__setattr__(
            self, "scan", _coerce(self.scan, ScanSpec, "CBSJob.scan")
        )
        object.__setattr__(
            self, "ring", _coerce(self.ring, RingSpec, "CBSJob.ring")
        )
        object.__setattr__(
            self,
            "execution",
            _coerce(self.execution, ExecutionSpec, "CBSJob.execution"),
        )
        self.ss_config()  # eager validation of the numerical parameters

    # -- derived views -------------------------------------------------------

    def energies(self) -> Tuple[float, ...]:
        """Ascending de-duplicated energy grid of this job."""
        return self.scan.grid()

    def ss_config(self) -> SSConfig:
        """The :class:`SSConfig` this job describes (validated)."""
        return SSConfig(
            n_int=self.ring.n_int,
            n_mm=self.scan.n_mm,
            n_rh=self.scan.n_rh,
            delta=self.scan.delta,
            lambda_min=self.ring.lambda_min,
            ring_radii=self.ring.ring_radii,
            linear_solver=self.scan.linear_solver,
            direct_threshold=self.scan.direct_threshold,
            bicg_tol=self.scan.bicg_tol,
            bicg_maxiter=self.scan.bicg_maxiter,
            use_dual_trick=self.scan.use_dual_trick,
            quorum_fraction=self.scan.quorum_fraction,
            jacobi=self.scan.jacobi,
            residual_tol=self.scan.residual_tol,
            annulus_margin=self.ring.annulus_margin,
            seed=self.scan.seed,
        )

    def engine(self) -> str:
        """Which backend :func:`repro.api.compute` routes this job to:
        ``"solver"`` (one :class:`SSHankelSolver` call), ``"scan"``
        (:class:`CBSCalculator`), or ``"orchestrator"``
        (:class:`ScanOrchestrator`)."""
        if self.execution.mode in ("processes", "orchestrated"):
            return "orchestrator"
        if (
            self.execution.mode == "serial"
            and len(self.energies()) == 1
            and not self.execution.warm_start
            and self.execution.cache_dir is None
        ):
            return "solver"
        return "scan"

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A pure-JSON-types dict (lists, not tuples) round-tripping
        through :meth:`from_dict`."""
        return {
            "spec_version": JOB_SPEC_VERSION,
            "system": self.system.to_dict(),
            "ring": self.ring.to_dict(),
            "scan": self.scan.to_dict(),
            "execution": self.execution.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "CBSJob":
        _check_keys(
            d,
            ("spec_version", "system", "ring", "scan", "execution"),
            "CBSJob",
        )
        version = d.get("spec_version", JOB_SPEC_VERSION)
        if version != JOB_SPEC_VERSION:
            raise ConfigurationError(
                f"unsupported CBSJob spec_version {version!r}; this build "
                f"reads version {JOB_SPEC_VERSION}"
            )
        if "system" not in d or "scan" not in d:
            raise ConfigurationError(
                "CBSJob dict needs at least 'system' and 'scan'"
            )
        return cls(
            system=SystemSpec.from_dict(d["system"]),
            scan=ScanSpec.from_dict(d["scan"]),
            ring=RingSpec.from_dict(d.get("ring", {})),
            execution=ExecutionSpec.from_dict(d.get("execution", {})),
        )

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, no whitespace — the hash input."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "CBSJob":
        return cls.from_dict(json.loads(text))

    # -- identities ----------------------------------------------------------

    def job_hash(self) -> str:
        """Canonical identity of the whole job (provenance key)."""
        h = hashlib.sha256()
        h.update(b"cbs-job-v%d:" % JOB_SPEC_VERSION)
        h.update(self.to_json().encode("utf-8"))
        return h.hexdigest()[:24]

    def cache_context(self) -> str:
        """Slice-cache context: a hash of only the answer-determining
        parts of the job.

        Execution details (mode, workers, shards, warm starts, the cache
        directory itself) change how fast slices arrive, never what they
        are — except the tuning policy, which changes the effective
        per-slice solver parameters and is therefore folded in via the
        *engine-effective* value: only the orchestrator engine tunes, so
        solver/scan-engine jobs always key under the disabled policy
        regardless of what ``execution.tuning`` says (those engines
        ignore it — keying on the ignored value would let untuned slices
        poison a tuned run's cache).  The energy grid is excluded too:
        slices are keyed per-energy *inside* the context, so extending
        or refining a scan window reuses every energy already solved.
        Two jobs that differ only in execution or grid share cache
        entries; a tuned and an untuned run never do.
        """
        scan_physics = self.scan.to_dict()
        scan_physics.pop("energies")
        scan_physics.pop("window")
        effective_tuning = (
            self.execution.resolved_tuning()
            if self.engine() == "orchestrator"
            else TuningPolicy(enabled=False)
        )
        if not effective_tuning.enabled:
            # All disabled policies behave identically; key them equally.
            effective_tuning = TuningPolicy(enabled=False)
        payload = {
            "system": self.system.to_dict(),
            "ring": self.ring.to_dict(),
            "scan": scan_physics,
            "tuning": asdict(effective_tuning),
        }
        h = hashlib.sha256()
        h.update(b"cbs-job-cache-v%d:" % JOB_SPEC_VERSION)
        h.update(
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
                "utf-8"
            )
        )
        return h.hexdigest()[:24]


__all__: List[str] = [
    "JOB_SPEC_VERSION",
    "SystemSpec",
    "RingSpec",
    "ScanSpec",
    "ExecutionSpec",
    "CBSJob",
]
