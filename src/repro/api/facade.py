"""``compute(job)`` — one entry point over every CBS engine.

The repo grew three ways to run the same physics: a single
:meth:`SSHankelSolver.solve`, a :meth:`CBSCalculator.scan`, and a
:class:`ScanOrchestrator` workload.  This module makes them internal
backends behind one routing function:

========================  =====================================
job shape                 engine
========================  =====================================
one energy, serial        ``"solver"`` — one SS Hankel solve
energy grid,              ``"scan"`` — :class:`CBSCalculator`
serial/threads            (warm chain or mapped slices)
``mode="processes"`` /    ``"orchestrator"`` —
``mode="orchestrated"``   :class:`ScanOrchestrator` (sharding,
                          tuning, refinement, slice cache)
========================  =====================================

Every route returns the same versioned :class:`repro.cbs.CBSResult`
with a provenance block (job hash, ``repro.__version__``, engine,
per-shard tuning decisions), and :func:`compute_iter` streams the same
workload slice by slice with progress/cancellation callbacks.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Callable, Dict, Iterator, Mapping, Optional

import numpy as np

from repro.api.spec import CBSJob
from repro.cbs.orchestrator import (
    OrchestratorConfig,
    ScanOrchestrator,
    ScanReport,
    iter_warm_chain,
)
from repro.cbs.scan import CBSCalculator, CBSResult, EnergySlice
from repro.errors import ConfigurationError
from repro.io.slice_cache import SliceCache

ProgressFn = Callable[[int, int], None]
CancelFn = Callable[[], bool]


def _as_job(job) -> CBSJob:
    if isinstance(job, CBSJob):
        return job
    if isinstance(job, Mapping):
        return CBSJob.from_dict(job)
    raise ConfigurationError(
        f"compute() takes a CBSJob or a job dict, got {type(job).__name__}"
    )


def _jsonify(value):
    """Plain-JSON-types copy (numpy scalars → python, tuples → lists)."""
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, np.generic):
        return value.item()
    return value


def _provenance(
    job: CBSJob, engine: str, report: Optional[ScanReport] = None
) -> Dict[str, Any]:
    from repro import __version__

    prov: Dict[str, Any] = {
        "job_hash": job.job_hash(),
        "cache_context": job.cache_context(),
        "repro_version": __version__,
        "engine": engine,
        "job": job.to_dict(),
    }
    if report is not None:
        # The full telemetry, including the per-shard tuning decisions
        # (probe rank, final N_int/N_mm/N_rh per energy span).
        prov["report"] = _jsonify(asdict(report))
    return prov


# ---------------------------------------------------------------------------
# engines
# ---------------------------------------------------------------------------


def _calculator(job: CBSJob, blocks, *, energy_executor=None) -> CBSCalculator:
    return CBSCalculator(
        blocks,
        job.ss_config(),
        propagating_tol=job.scan.propagating_tol,
        energy_executor=energy_executor,
        warm_start=job.execution.warm_start,
    )


def _make_orchestrator(job: CBSJob, blocks) -> ScanOrchestrator:
    ex = job.execution
    orch = OrchestratorConfig(
        executor=ex.executor_spec(),
        n_shards=ex.n_shards,
        warm_start=True,  # effective warm policy is ex.warm_start below
        tuning=ex.resolved_tuning(),
        refine=ex.resolved_refine(),
        cache_dir=ex.cache_dir,
    )
    return ScanOrchestrator(
        blocks,
        job.ss_config(),
        propagating_tol=job.scan.propagating_tol,
        warm_start=ex.warm_start,
        orch=orch,
        cache_context=job.cache_context(),
        _internal=True,
    )


def _iter_cached_map(
    calc: CBSCalculator, energies, cache: SliceCache
) -> Iterator[EnergySlice]:
    """Cache-aware independent-slice map, in ascending energy order.

    Hits are served from the cache (``solve_seconds`` zeroed — this run
    did no work for them); only the misses go through the executor's
    ordered ``imap``, and each is persisted as it completes.
    """
    hits = {}
    misses = []
    for energy in energies:
        sl = cache.get_hit(energy)
        if sl is not None:
            hits[energy] = sl
        else:
            misses.append(energy)
    solved = calc._executor.imap(calc.solve_energy, misses)
    try:
        for energy in energies:
            if energy in hits:
                yield hits[energy]
            else:
                sl = next(solved)
                cache.put(sl)
                yield sl
    finally:
        close = getattr(solved, "close", None)
        if close is not None:
            close()


def _iter_scan_engine(
    job: CBSJob,
    blocks,
    progress: Optional[ProgressFn],
    should_cancel: Optional[CancelFn],
) -> Iterator[EnergySlice]:
    """The CBSCalculator route, streamed slice by slice.

    Serial jobs (and every warm-started job — warm chains are inherently
    sequential) run the shared warm-chain loop; thread jobs stream
    through the executor's ordered ``imap``, so later energies keep
    solving while earlier slices are consumed.  Both honor the
    persistent slice cache when the job names one.
    """
    ex = job.execution
    energies = list(job.energies())
    total = len(energies)
    cache = (
        SliceCache(ex.cache_dir, context=job.cache_context())
        if ex.cache_dir is not None
        else None
    )
    sequential = ex.mode == "serial" or ex.warm_start
    if sequential:
        calc = _calculator(job, blocks)
        gen: Iterator[EnergySlice] = iter_warm_chain(calc, energies, cache)
    else:
        calc = _calculator(job, blocks, energy_executor=ex.executor_spec())
        if cache is not None:
            gen = _iter_cached_map(calc, energies, cache)
        else:
            gen = calc._executor.imap(calc.solve_energy, energies)
    try:
        for done, sl in enumerate(gen, start=1):
            if progress is not None:
                progress(done, total)
            yield sl
            if should_cancel is not None and should_cancel():
                return
    finally:
        close = getattr(gen, "close", None)
        if close is not None:
            close()


# ---------------------------------------------------------------------------
# the facade
# ---------------------------------------------------------------------------


def _route_iter(
    job: CBSJob,
    blocks,
    engine: str,
    report: Optional[ScanReport],
    progress: Optional[ProgressFn],
    should_cancel: Optional[CancelFn],
) -> Iterator[EnergySlice]:
    """The single engine dispatch behind :func:`compute` and
    :func:`compute_iter` (``report`` collects orchestrator telemetry
    when the caller wants it)."""
    if engine == "orchestrator":
        orc = _make_orchestrator(job, blocks)
        return orc.iter_scan(
            job.energies(),
            report=report,
            progress=progress,
            should_cancel=should_cancel,
        )
    if engine == "solver":

        def _single() -> Iterator[EnergySlice]:
            calc = _calculator(job, blocks)
            (energy,) = job.energies()
            sl = calc.solve_energy(energy)
            if progress is not None:
                progress(1, 1)
            yield sl

        return _single()
    return _iter_scan_engine(job, blocks, progress, should_cancel)


def compute(
    job,
    *,
    progress: Optional[ProgressFn] = None,
    should_cancel: Optional[CancelFn] = None,
) -> CBSResult:
    """Run a :class:`CBSJob` (or job dict) to a complete, energy-ordered
    :class:`repro.cbs.CBSResult` with a stamped provenance block.

    Routing (see module docstring) is by job shape only — the same job
    always produces the same modes whichever engine serves it, and jobs
    that share physics share :class:`repro.io.slice_cache.SliceCache`
    entries across execution modes.

    ``progress(done, total)`` and ``should_cancel()`` behave as in
    :func:`compute_iter`; a cancelled compute returns the partial result
    (whatever slices finished, energy-ordered, provenance stamped).
    """
    job = _as_job(job)
    blocks = job.system.build()
    engine = job.engine()
    report = ScanReport() if engine == "orchestrator" else None

    slices = list(
        _route_iter(job, blocks, engine, report, progress, should_cancel)
    )
    slices.sort(key=lambda s: s.energy)
    result = CBSResult(slices, blocks.cell_length)
    result.provenance = _provenance(job, engine, report)
    return result


def compute_iter(
    job,
    *,
    progress: Optional[ProgressFn] = None,
    should_cancel: Optional[CancelFn] = None,
) -> Iterator[EnergySlice]:
    """Stream a job's :class:`EnergySlice`s as they complete.

    The slices of the requested grid arrive in ascending energy order
    (the orchestrated engines overlap later shards with consumption of
    earlier ones); adaptive refinement insertions follow after the base
    grid.  ``progress(done, total)`` fires after every slice;
    ``should_cancel()`` is polled between slices/shards and ends the
    stream early when it returns true.

    Validation, system resolution, and routing happen eagerly at call
    time; only the solving is lazy.
    """
    job = _as_job(job)
    blocks = job.system.build()
    return _route_iter(
        job, blocks, job.engine(), None, progress, should_cancel
    )
