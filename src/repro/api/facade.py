"""``compute(job)`` — one entry point over every CBS engine.

The repo grew three ways to run the same physics: a single
:meth:`SSHankelSolver.solve`, a :meth:`CBSCalculator.scan`, and a
:class:`ScanOrchestrator` workload.  This module makes them internal
backends behind one routing function:

========================  =====================================
job shape                 engine
========================  =====================================
one energy, serial        ``"solver"`` — one SS Hankel solve
energy grid,              ``"scan"`` — :class:`CBSCalculator`
serial/threads            (warm chain or mapped slices)
``mode="processes"`` /    ``"orchestrator"`` —
``mode="orchestrated"``   :class:`ScanOrchestrator` (sharding,
                          tuning, refinement, slice cache)
job with a                ``"transport"`` — Σ(E) + Landauer T(E)
``TransportSpec``         (serial loop or sharded
                          :class:`TransportScanner`)
========================  =====================================

Every route returns a versioned result with a provenance block (job
hash, ``repro.__version__``, engine, per-shard telemetry) — a
:class:`repro.cbs.CBSResult` for CBS jobs, a
:class:`repro.transport.TransportResult` for transport jobs — and
:func:`compute_iter` streams the same workload slice by slice with
progress/cancellation callbacks.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, Iterator, Mapping, Optional, Union

import numpy as np

from repro.api.spec import CBSJob
from repro.cbs.orchestrator import (
    CancelFn,
    OrchestratorConfig,
    ProgressFn,
    RefinePolicy,
    ScanOrchestrator,
    ScanReport,
    TuningPolicy,
    iter_warm_chain,
)
from repro.cbs.scan import CBSCalculator, CBSResult, EnergySlice
from repro.errors import ConfigurationError
from repro.io.slice_cache import SliceCache
from repro.transport.device import TwoProbeDevice
from repro.transport.scan import (
    TransportCalculator,
    TransportResult,
    TransportScanner,
    TransportSlice,
)


def _as_job(job) -> CBSJob:
    if isinstance(job, CBSJob):
        return job
    if isinstance(job, Mapping):
        return CBSJob.from_dict(job)
    raise ConfigurationError(
        f"compute() takes a CBSJob or a job dict, got {type(job).__name__}"
    )


def _jsonify(value):
    """Plain-JSON-types copy (numpy scalars → python, tuples → lists)."""
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, np.generic):
        return value.item()
    return value


def _provenance(
    job: CBSJob, engine: str, report: Optional[ScanReport] = None
) -> Dict[str, Any]:
    from repro import __version__

    prov: Dict[str, Any] = {
        "job_hash": job.job_hash(),
        "cache_context": job.cache_context(),
        "repro_version": __version__,
        "engine": engine,
        "job": job.to_dict(),
    }
    if report is not None:
        # The full telemetry, including the per-shard tuning decisions
        # (probe rank, final N_int/N_mm/N_rh per energy span).
        prov["report"] = _jsonify(asdict(report))
    return prov


# ---------------------------------------------------------------------------
# engines
# ---------------------------------------------------------------------------


def _calculator(job: CBSJob, blocks, *, energy_executor=None) -> CBSCalculator:
    return CBSCalculator(
        blocks,
        job.ss_config(),
        propagating_tol=job.scan.propagating_tol,
        energy_executor=energy_executor,
        warm_start=job.execution.warm_start,
    )


def _make_orchestrator(job: CBSJob, blocks) -> ScanOrchestrator:
    ex = job.execution
    orch = OrchestratorConfig(
        executor=ex.executor_spec(),
        n_shards=ex.n_shards,
        warm_start=True,  # effective warm policy is ex.warm_start below
        tuning=ex.resolved_tuning(),
        refine=ex.resolved_refine(),
        cache_dir=ex.cache_dir,
    )
    return ScanOrchestrator(
        blocks,
        job.ss_config(),
        propagating_tol=job.scan.propagating_tol,
        warm_start=ex.warm_start,
        orch=orch,
        cache_context=job.cache_context(),
        _internal=True,
    )


def _make_map_orchestrator(job: CBSJob, blocks) -> ScanOrchestrator:
    """The orchestrator behind the ``"map"`` engine.

    Tuning and refinement are forced off regardless of the execution
    spec: the surrogate does its own (2D) refinement, and solved map
    pixels are cached under the plain scan context — which for the map
    engine keys on the *disabled* tuning policy
    (:meth:`CBSJob.cache_context` folds the engine-effective value), so
    a tuned solve here would poison entries shared with plain scans.
    """
    ex = job.execution
    orch = OrchestratorConfig(
        executor=ex.executor_spec(),
        n_shards=ex.n_shards,
        warm_start=True,
        tuning=TuningPolicy(enabled=False),
        refine=RefinePolicy(enabled=False),
        cache_dir=ex.cache_dir,
    )
    return ScanOrchestrator(
        blocks,
        job.ss_config(),
        propagating_tol=job.scan.propagating_tol,
        warm_start=ex.warm_start,
        orch=orch,
        cache_context=job.cache_context(),
        _internal=True,
    )


def _iter_map_engine(
    job: CBSJob,
    columns,
    report,
    progress: Optional[ProgressFn],
    should_cancel: Optional[CancelFn],
):
    """The map-surrogate route: solve a sparse pixel subset, stream the
    dense (E, k∥) map.

    Solved pixels go through the ordinary shard/cache machinery under
    the per-momentum contexts (``job.cache_context(k_par=k)``), so they
    are shared with plain scans of the same physics; interpolated
    pixels are predictions and are never written into those namespaces.
    """
    from repro.maps import MapSurrogate

    ex = job.execution
    orc = _make_map_orchestrator(job, columns[0][2])
    contexts = (
        [job.cache_context(k_par=k) for k, _w, _b in columns]
        if ex.cache_dir is not None
        else None
    )
    surrogate = MapSurrogate(
        orc,
        list(job.energies()),
        columns,
        job.map,
        cache_contexts=contexts,
    )
    return surrogate.iter_pixels(
        report=report,
        progress=progress,
        should_cancel=should_cancel,
    )


def _iter_cached_map(
    calc: CBSCalculator,
    energies,
    cache: SliceCache,
    k_par: Optional[float] = None,
) -> Iterator[EnergySlice]:
    """Cache-aware independent-slice map, in ascending energy order.

    Hits are served from the cache (``solve_seconds`` zeroed — this run
    did no work for them); only the misses go through the executor's
    ordered ``imap``, and each is persisted as it completes — stamped
    with the caller's ``k_par`` first, so cached bytes carry the tag.
    """
    hits = {}
    misses = []
    for energy in energies:
        sl = cache.get_hit(energy)
        if sl is not None:
            if k_par is not None:
                sl.k_par = k_par
            hits[energy] = sl
        else:
            misses.append(energy)
    solved = calc._executor.imap(calc.solve_energy, misses)
    try:
        for energy in energies:
            if energy in hits:
                yield hits[energy]
            else:
                sl = next(solved)
                if k_par is not None:
                    sl.k_par = k_par
                cache.put(sl)
                yield sl
    finally:
        close = getattr(solved, "close", None)
        if close is not None:
            close()


def _iter_scan_engine(
    job: CBSJob,
    blocks,
    progress: Optional[ProgressFn],
    should_cancel: Optional[CancelFn],
    *,
    cache_context: Optional[str] = None,
    k_par: Optional[float] = None,
) -> Iterator[EnergySlice]:
    """The CBSCalculator route, streamed slice by slice.

    Serial jobs (and every warm-started job — warm chains are inherently
    sequential) run the shared warm-chain loop; thread jobs stream
    through the executor's ordered ``imap``, so later energies keep
    solving while earlier slices are consumed.  Both honor the
    persistent slice cache when the job names one (k∥-resolved columns
    pass their per-momentum ``cache_context`` and ``k_par``, which is
    stamped onto every slice before it is persisted or yielded).
    """
    ex = job.execution
    energies = list(job.energies())
    total = len(energies)
    cache = (
        SliceCache(
            ex.cache_dir,
            context=(
                cache_context
                if cache_context is not None
                else job.cache_context()
            ),
        )
        if ex.cache_dir is not None
        else None
    )
    sequential = ex.mode == "serial" or ex.warm_start
    if sequential:
        calc = _calculator(job, blocks)
        gen: Iterator[EnergySlice] = iter_warm_chain(
            calc, energies, cache, k_par=k_par
        )
    else:
        calc = _calculator(job, blocks, energy_executor=ex.executor_spec())
        if cache is not None:
            gen = _iter_cached_map(calc, energies, cache, k_par=k_par)
        else:
            gen = calc._executor.imap(calc.solve_energy, energies)
    try:
        for done, sl in enumerate(gen, start=1):
            if progress is not None:
                progress(done, total)
            yield sl
            if should_cancel is not None and should_cancel():
                return
    finally:
        close = getattr(gen, "close", None)
        if close is not None:
            close()


def _make_device(job: CBSJob, blocks) -> TwoProbeDevice:
    """The :class:`repro.transport.TwoProbeDevice` a transport job names."""
    ts = job.transport
    device_blocks = ts.device.build() if ts.device is not None else None
    return TwoProbeDevice(
        blocks,
        n_cells=ts.n_cells,
        device=device_blocks,
        onsite_shift=ts.onsite_shift,
    )


def _iter_transport_engine(
    job: CBSJob,
    blocks,
    report: Optional[ScanReport],
    progress: Optional[ProgressFn],
    should_cancel: Optional[CancelFn],
):
    """The transport route, streamed slice by slice.

    Serial jobs run a cache-aware in-process loop; every other mode
    goes through :class:`repro.transport.TransportScanner` (threads or
    process shards, merged in energy order) with the job-derived cache
    context.  The callback contract is identical to the CBS routes.
    """
    ex = job.execution
    ts = job.transport
    cfg = ts.self_energy_config(backend=ex.backend)
    device = _make_device(job, blocks)
    energies = list(job.energies())

    if ex.mode == "serial":
        cache = (
            SliceCache(ex.cache_dir, context=job.cache_context())
            if ex.cache_dir is not None
            else None
        )
        calc = TransportCalculator(device, cfg, method=ts.method)

        def _serial():
            total = len(energies)
            gen = calc.iter_scan_cached(energies, cache)
            for done, (sl, _hit) in enumerate(gen, start=1):
                if progress is not None:
                    progress(done, total)
                yield sl
                if should_cancel is not None and should_cancel():
                    return

        return _serial()

    scanner = TransportScanner(
        device,
        cfg,
        method=ts.method,
        executor=ex.executor_spec(),
        n_shards=ex.n_shards,
        cache_dir=ex.cache_dir,
        cache_context=(
            job.cache_context() if ex.cache_dir is not None else None
        ),
    )
    return scanner.iter_scan(
        energies,
        report=report,
        progress=progress,
        should_cancel=should_cancel,
    )


# ---------------------------------------------------------------------------
# the k∥ product-grid engine
# ---------------------------------------------------------------------------


def _kpar_columns(job: CBSJob):
    """Resolve one system build per transverse momentum.

    Returns ``[(k_par, weight, blocks), ...]`` in ascending momentum
    order — the k∥ columns of the job's ``ScanSpec × KParSpec`` product
    grid.  Each build injects the momentum as the builder parameter the
    :class:`repro.api.KParSpec` names (``"k_par"`` by default), so only
    systems whose builders accept it can be swept.
    """
    from repro.api.registry import resolve_system

    spec = job.kpar
    columns = []
    for k, w in zip(spec.points(), spec.resolved_weights()):
        params = dict(job.system.params)
        params[spec.param] = float(k)
        blocks = resolve_system(job.system.name, params)
        columns.append((float(k), float(w), blocks))
    return columns


def _iter_kpar_engine(
    job: CBSJob,
    columns,
    engine: str,
    report: Optional[ScanReport],
    progress: Optional[ProgressFn],
    should_cancel: Optional[CancelFn],
):
    """Route a k∥-resolved job through the engine serving its shape.

    Serial/thread CBS jobs and serial transport jobs run their k∥
    columns in ascending momentum order through the same per-column
    loops as their 1D counterparts; the process-sharded engines tile
    the whole (E, k∥) product grid across one executor
    (:meth:`ScanOrchestrator.iter_kpar_scan` /
    :meth:`TransportScanner.iter_kpar_scan`).  The slice cache is keyed
    per momentum via ``job.cache_context(k_par=k)``.  Every yielded
    slice carries its ``k_par`` (transport slices also their BZ
    weight), and ``progress(done, total)`` counts over the full
    product grid.
    """
    if engine == "map":
        return _iter_map_engine(job, columns, report, progress, should_cancel)

    ex = job.execution
    energies = list(job.energies())
    total = len(energies) * len(columns)
    contexts = (
        [job.cache_context(k_par=k) for k, _w, _b in columns]
        if ex.cache_dir is not None
        else None
    )

    if engine == "transport":
        ts = job.transport
        cfg = ts.self_energy_config(backend=ex.backend)
        devices = [
            (k, w, _make_device(job, blocks)) for k, w, blocks in columns
        ]
        if ex.mode == "serial":

            def _serial_transport():
                done = 0
                for ci, (k, w, device) in enumerate(devices):
                    cache = (
                        SliceCache(ex.cache_dir, context=contexts[ci])
                        if contexts is not None
                        else None
                    )
                    calc = TransportCalculator(device, cfg, method=ts.method)
                    for sl, _hit in calc.iter_scan_cached(
                        energies, cache, k_par=k, k_weight=w
                    ):
                        done += 1
                        if progress is not None:
                            progress(done, total)
                        yield sl
                        if should_cancel is not None and should_cancel():
                            return

            return _serial_transport()
        scanner = TransportScanner(
            devices[0][2],
            cfg,
            method=ts.method,
            executor=ex.executor_spec(),
            n_shards=ex.n_shards,
            cache_dir=ex.cache_dir,
            cache_context=contexts[0] if contexts is not None else None,
        )
        return scanner.iter_kpar_scan(
            energies,
            devices,
            cache_contexts=contexts,
            report=report,
            progress=progress,
            should_cancel=should_cancel,
        )

    if engine == "orchestrator":
        orc = _make_orchestrator(job, columns[0][2])
        return orc.iter_kpar_scan(
            energies,
            [(k, blocks) for k, _w, blocks in columns],
            cache_contexts=contexts,
            report=report,
            progress=progress,
            should_cancel=should_cancel,
        )

    # "scan": serial/threads, one energy column per momentum.
    def _serial_columns():
        done = 0
        for ci, (k, _w, blocks) in enumerate(columns):
            gen = _iter_scan_engine(
                job,
                blocks,
                None,
                should_cancel,
                cache_context=contexts[ci] if contexts is not None else None,
                k_par=k,
            )
            for sl in gen:
                # The cache paths stamped before persisting; this covers
                # the uncached executor map, where nothing stamped yet.
                sl.k_par = k
                done += 1
                if progress is not None:
                    progress(done, total)
                yield sl
                if should_cancel is not None and should_cancel():
                    return

    return _serial_columns()


# ---------------------------------------------------------------------------
# the facade
# ---------------------------------------------------------------------------


def _route_iter(
    job: CBSJob,
    blocks,
    engine: str,
    report: Optional[ScanReport],
    progress: Optional[ProgressFn],
    should_cancel: Optional[CancelFn],
) -> Iterator[EnergySlice]:
    """The single engine dispatch behind :func:`compute` and
    :func:`compute_iter` (``report`` collects orchestrator/scanner
    telemetry when the caller wants it)."""
    if engine == "transport":
        return _iter_transport_engine(
            job, blocks, report, progress, should_cancel
        )
    if engine == "orchestrator":
        orc = _make_orchestrator(job, blocks)
        return orc.iter_scan(
            job.energies(),
            report=report,
            progress=progress,
            should_cancel=should_cancel,
        )
    if engine == "solver":

        def _single() -> Iterator[EnergySlice]:
            calc = _calculator(job, blocks)
            (energy,) = job.energies()
            sl = calc.solve_energy(energy)
            if progress is not None:
                progress(1, 1)
            yield sl

        return _single()
    return _iter_scan_engine(job, blocks, progress, should_cancel)


def compute(
    job,
    *,
    progress: Optional[ProgressFn] = None,
    should_cancel: Optional[CancelFn] = None,
) -> Union[CBSResult, TransportResult]:
    """Run a :class:`CBSJob` (or job dict) to a complete result.

    Routing (see module docstring) is by job shape only — the same job
    always produces the same answer whichever engine serves it, and
    jobs that share physics share
    :class:`repro.io.slice_cache.SliceCache` entries across execution
    modes.

    Parameters
    ----------
    job : CBSJob or mapping
        The workload; dicts are validated through
        :meth:`CBSJob.from_dict`.
    progress : callable, optional
        ``progress(done, total)``, invoked after every finished slice;
        see :data:`repro.cbs.orchestrator.ProgressFn` (``total`` may
        grow while refinement inserts energies).
    should_cancel : callable, optional
        ``should_cancel() -> bool``, polled between slices/shards; see
        :data:`repro.cbs.orchestrator.CancelFn`.  A cancelled compute
        returns the partial result — whatever slices finished,
        energy-ordered, provenance stamped.

    Returns
    -------
    repro.cbs.CBSResult or repro.transport.TransportResult
        Energy-ordered slices with a stamped provenance block (job
        hash, ``repro.__version__``, the routed engine, telemetry).
        Jobs carrying a :class:`repro.api.TransportSpec` return a
        ``TransportResult``; all others a ``CBSResult``.

    Examples
    --------
    >>> from repro.api import CBSJob, compute
    >>> result = compute(CBSJob(
    ...     system={"name": "chain", "params": {"hopping": -1.0}},
    ...     scan={"energies": [0.0], "n_mm": 2, "n_rh": 2, "seed": 1,
    ...           "linear_solver": "direct"},
    ...     ring={"n_int": 16}))
    >>> result.slices[0].count
    2
    """
    job = _as_job(job)
    engine = job.engine()
    if engine == "map":
        from repro.maps import MapReport

        report = MapReport()
    else:
        report = (
            ScanReport()
            if engine == "orchestrator"
            or (engine == "transport" and job.execution.mode != "serial")
            else None
        )

    if job.kpar is not None:
        columns = _kpar_columns(job)
        cell_length = columns[0][2].cell_length
        slices = list(
            _iter_kpar_engine(
                job, columns, engine, report, progress, should_cancel
            )
        )
        slices.sort(key=lambda s: (s.k_par, s.energy))
    else:
        blocks = job.system.build()
        cell_length = blocks.cell_length
        slices = list(
            _route_iter(job, blocks, engine, report, progress, should_cancel)
        )
        slices.sort(key=lambda s: s.energy)
    if engine == "transport":
        result: Union[CBSResult, TransportResult] = TransportResult(
            slices, cell_length
        )
        result.provenance = _provenance(job, engine, report)
    elif engine == "map":
        from repro.maps import MapResult

        result = MapResult(slices, cell_length)
        # The inner scan telemetry rides in the usual "report" slot;
        # the surrogate's pixel accounting gets its own block.
        result.provenance = _provenance(job, engine, report.scan)
        map_counters = asdict(report)
        map_counters.pop("scan", None)
        result.provenance["map_report"] = _jsonify(map_counters)
    else:
        result = CBSResult(slices, cell_length)
        result.provenance = _provenance(job, engine, report)
    return result


def compute_iter(
    job,
    *,
    progress: Optional[ProgressFn] = None,
    should_cancel: Optional[CancelFn] = None,
) -> Iterator[Union[EnergySlice, TransportSlice]]:
    """Stream a job's slices as they complete.

    The slices of the requested grid arrive in ascending energy order
    (the sharded engines overlap later shards with consumption of
    earlier ones); adaptive refinement insertions follow after the base
    grid.  Validation, system resolution, and routing happen eagerly at
    call time; only the solving is lazy.

    Parameters
    ----------
    job : CBSJob or mapping
        The workload.
    progress : callable, optional
        ``progress(done, total)``, invoked after every yielded slice —
        the shared contract of
        :data:`repro.cbs.orchestrator.ProgressFn` (``total`` grows when
        refinement inserts energies, so ``done == total`` means
        "caught up", not "finished").
    should_cancel : callable, optional
        ``should_cancel() -> bool`` — the shared contract of
        :data:`repro.cbs.orchestrator.CancelFn`.  Polled between
        slices/shards (never mid-solve); returning ``True`` ends the
        stream early, and every slice already yielded remains valid.

    Yields
    ------
    repro.cbs.EnergySlice or repro.transport.TransportSlice
        CBS slices for CBS jobs; transport slices for jobs carrying a
        :class:`repro.api.TransportSpec`.  k∥-resolved jobs stream in
        (k∥, E) order, one energy column per momentum, each slice
        stamped with its ``k_par``.
    """
    job = _as_job(job)
    if job.kpar is not None:
        columns = _kpar_columns(job)
        return _iter_kpar_engine(
            job, columns, job.engine(), None, progress, should_cancel
        )
    blocks = job.system.build()
    return _route_iter(
        job, blocks, job.engine(), None, progress, should_cancel
    )
