"""Named system builders: the ``@register_system`` registry.

A :class:`repro.api.CBSJob` names its physical system declaratively —
``SystemSpec(name="ladder", params={"width": 4})`` — instead of holding
a live :class:`repro.qep.blocks.BlockTriple`.  The name resolves through
this registry to a builder callable ``(**params) -> BlockTriple``, so a
job is fully serializable (JSON round-trip, cross-process, cross-host)
and every new physics builder is a registry entry instead of a new API.

Built-in entries are registered where the builders live:

* :mod:`repro.models` — the analytic validation models
  (``"chain"``, ``"diatomic-chain"``, ``"ladder"``);
* :mod:`repro.dft.builders` — the paper's DFT systems
  (``"al100"``, ``"nanotube"``), which assemble a real-space
  Kohn-Sham block triple on demand.

Those modules load on first registration/resolution rather than at
:mod:`repro.api` import, which breaks any import cycle (the expensive
part — assembling a DFT Hamiltonian — is lazy inside each builder
either way).  External code adds systems the same way::

    from repro.api import register_system

    @register_system("my-wire")
    def build_my_wire(*, hopping=-1.0):
        return ...  # a BlockTriple
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigurationError
from repro.qep.blocks import BlockTriple

#: name -> builder ``(**params) -> BlockTriple``
_SYSTEMS: Dict[str, Callable[..., BlockTriple]] = {}

_builtins_loaded = False
_builtins_loading = False


def _ensure_builtins() -> None:
    """Import the modules that register the built-in systems (idempotent).

    The loaded flag flips only after both imports succeed, so a failed
    import surfaces its real error to the caller and is retried on the
    next resolution instead of leaving a permanently empty registry.
    The loading flag breaks the recursion when the builtin modules'
    own ``@register_system`` calls land back here mid-import.
    """
    global _builtins_loaded, _builtins_loading
    if _builtins_loaded or _builtins_loading:
        return
    _builtins_loading = True
    try:
        import repro.models  # noqa: F401  — registers the analytic models
        import repro.dft.builders  # noqa: F401 — registers "al100", "nanotube"
        _builtins_loaded = True
    finally:
        _builtins_loading = False


def register_system(
    name: str, *, replace: bool = False
) -> Callable[[Callable[..., BlockTriple]], Callable[..., BlockTriple]]:
    """Decorator registering a builder under ``name``.

    The builder is called with the job's ``SystemSpec.params`` as
    keyword arguments and must return a :class:`BlockTriple`.
    Re-registering an existing name raises unless ``replace=True``.
    """
    if not isinstance(name, str) or not name:
        raise ConfigurationError(
            f"system name must be a non-empty string, got {name!r}"
        )

    def decorator(fn: Callable[..., BlockTriple]) -> Callable[..., BlockTriple]:
        # Load the builtins before the duplicate check, so registering
        # a name that collides with a builtin fails loudly instead of
        # being silently overridden when the builtins load later.
        # (No-op re-entrant call while the builtins themselves import.)
        _ensure_builtins()
        if name in _SYSTEMS and not replace:
            raise ConfigurationError(
                f"system {name!r} is already registered "
                f"(pass replace=True to override)"
            )
        _SYSTEMS[name] = fn
        return fn

    return decorator


def available_systems() -> List[str]:
    """Sorted names of every registered system builder."""
    _ensure_builtins()
    return sorted(_SYSTEMS)


def resolve_system(name: str, params: dict | None = None) -> BlockTriple:
    """Build the block triple for a registered system name.

    Raises :class:`ConfigurationError` for an unknown name, for builder
    parameters the builder rejects, and for a builder that returns
    anything but a :class:`BlockTriple`.
    """
    _ensure_builtins()
    if name not in _SYSTEMS:
        raise ConfigurationError(
            f"unknown system {name!r}; registered systems: "
            f"{available_systems()}"
        )
    try:
        blocks = _SYSTEMS[name](**dict(params or {}))
    except TypeError as exc:
        raise ConfigurationError(
            f"system {name!r} rejected params {dict(params or {})!r}: {exc}"
        ) from exc
    if not isinstance(blocks, BlockTriple):
        raise ConfigurationError(
            f"system builder {name!r} must return a BlockTriple, "
            f"got {type(blocks).__name__}"
        )
    return blocks
