"""Conventional band structure — the reference for CBS validation.

For real ``k`` the Bloch Hamiltonian ``H(k) = H0 + e^{ika} H+ + e^{-ika} H-``
is Hermitian; diagonalizing it over a k-path gives the ordinary band
structure ``E_n(k)``.  Paper Figure 6 overlays the CBS propagating modes
(black dots) on these bands (red curves) and reports agreement at the
1e-5 level; :meth:`BandStructure.distance_to_bands` computes exactly that
metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.qep.blocks import BlockTriple


@dataclass
class BandStructure:
    """Bands on a k-grid.

    Attributes
    ----------
    k:
        Wave numbers (1/Bohr or model units), ascending, shape ``(nk,)``.
    energies:
        Band energies, shape ``(nk, nbands)``, each row ascending.
    cell_length:
        The period ``a`` (for folding conventions).
    """

    k: np.ndarray
    energies: np.ndarray
    cell_length: float

    @property
    def n_bands(self) -> int:
        return self.energies.shape[1]

    def bands_at(self, ik: int) -> np.ndarray:
        return self.energies[ik]

    def crossings(self, energy: float) -> np.ndarray:
        """All ``k`` where some band crosses ``energy`` (linear interp).

        These are the conventional-band predictions for the propagating
        CBS modes at that energy.
        """
        ks = []
        for b in range(self.n_bands):
            e = self.energies[:, b]
            s = np.sign(e - energy)
            for i in np.nonzero(s[:-1] * s[1:] < 0)[0]:
                frac = (energy - e[i]) / (e[i + 1] - e[i])
                ks.append(self.k[i] + frac * (self.k[i + 1] - self.k[i]))
            # Exact hits.
            for i in np.nonzero(e == energy)[0]:
                ks.append(self.k[i])
        return np.unique(np.asarray(ks, dtype=np.float64))

    def distance_to_bands(self, energy: float, k_value: float) -> float:
        """Distance in k from ``(energy, k_value)`` to the nearest band
        crossing at that energy — the paper's Figure-6 accuracy metric.

        Returns ``inf`` when no band crosses ``energy`` on the path.
        """
        ks = self.crossings(energy)
        if ks.size == 0:
            return np.inf
        return float(np.min(np.abs(ks - k_value)))

    def energy_window(self) -> tuple[float, float]:
        return float(self.energies.min()), float(self.energies.max())


def band_structure(
    blocks: BlockTriple,
    n_k: int = 101,
    *,
    n_bands: Optional[int] = None,
    k_min: float = 0.0,
    k_max: Optional[float] = None,
    dense_threshold: int = 3000,
    sigma: Optional[float] = None,
) -> BandStructure:
    """Diagonalize ``H(k)`` over ``n_k`` points of ``[k_min, k_max]``.

    Parameters
    ----------
    blocks:
        The unit-cell triple; ``cell_length`` sets the Brillouin zone
        ``k_max = π / a`` default.
    n_k:
        Points along the path (Γ to the zone boundary by default).
    n_bands:
        Keep only the ``n_bands`` bands nearest ``sigma`` (or lowest, if
        ``sigma`` is None).  Required for sparse problems above
        ``dense_threshold``.
    dense_threshold:
        Use dense ``eigh`` below this dimension, ARPACK above.
    sigma:
        Shift-invert target for the sparse path (e.g. the Fermi energy).
    """
    a = blocks.cell_length
    if k_max is None:
        k_max = np.pi / a
    kvals = np.linspace(k_min, k_max, int(n_k))
    n = blocks.n
    use_dense = n <= dense_threshold
    if not use_dense and n_bands is None:
        raise ValueError(
            f"N={n} needs n_bands for the sparse eigensolver path"
        )

    rows = []
    for k in kvals:
        h = blocks.bloch_hamiltonian_k(float(k))
        if use_dense:
            hd = h.toarray() if sp.issparse(h) else np.asarray(h)
            e = sla.eigvalsh(hd)
            if n_bands is not None:
                if sigma is not None:
                    order = np.argsort(np.abs(e - sigma))
                    e = np.sort(e[order[:n_bands]])
                else:
                    e = e[:n_bands]
        else:
            hs = h.tocsc()
            if sigma is not None:
                e = spla.eigsh(
                    hs, k=n_bands, sigma=sigma, which="LM",
                    return_eigenvectors=False,
                )
            else:
                e = spla.eigsh(
                    hs, k=n_bands, which="SA", return_eigenvectors=False
                )
            e = np.sort(np.real(e))
        rows.append(np.real(e))
    return BandStructure(kvals, np.vstack(rows), a)
