"""Branch tracking and branch-point detection on CBS loops.

In a band gap every CBS solution is evanescent; the dominant (smallest
``|Im k|``) solutions trace a **loop** connecting the valence-band top to
the conduction-band bottom.  The **branch point** is the turning point of
that loop — the energy where ``|Im k|`` along the branch is extremal
(``dE/dk = 0`` in the complex plane).  Its position controls tunneling:
paper Figure 11(a) marks it with a red dot for the isolated (8,0) CNT and
observes that bundling "kicks it out" of the gap.

Branches are tracked across the energy grid by nearest-neighbor matching
of ``λ`` between consecutive slices (the eigenvalues move continuously
with E), then each branch is searched for interior extrema of ``Im k``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.cbs.scan import CBSResult


@dataclass
class Branch:
    """One continuously tracked CBS branch over the energy grid."""

    energies: List[float] = field(default_factory=list)
    lams: List[complex] = field(default_factory=list)

    @property
    def length(self) -> int:
        return len(self.energies)

    def imag_k(self, cell_length: float) -> np.ndarray:
        lam = np.asarray(self.lams, dtype=np.complex128)
        return (-1j * np.log(lam) / cell_length).imag


@dataclass(frozen=True)
class BranchPoint:
    """A detected turning point of an evanescent branch."""

    energy: float
    lam: complex
    imag_k: float


def track_branches(
    result: CBSResult,
    *,
    match_tol: float = 0.5,
    min_length: int = 3,
) -> List[Branch]:
    """Group modes of consecutive energy slices into continuous branches.

    Greedy nearest-λ matching: a mode at slice ``i+1`` continues the
    branch whose last λ is nearest, if the relative distance is below
    ``match_tol``; otherwise it starts a new branch.
    """
    open_branches: List[Branch] = []
    closed: List[Branch] = []
    for s in result.slices:
        lams = s.lambdas()
        used = np.zeros(len(lams), dtype=bool)
        still_open: List[Branch] = []
        for br in open_branches:
            last = br.lams[-1]
            best = -1
            best_d = np.inf
            for i, lam in enumerate(lams):
                if used[i]:
                    continue
                d = abs(lam - last) / max(abs(last), 1e-12)
                if d < best_d:
                    best_d, best = d, i
            if best >= 0 and best_d <= match_tol:
                br.energies.append(s.energy)
                br.lams.append(complex(lams[best]))
                used[best] = True
                still_open.append(br)
            else:
                closed.append(br)
        for i, lam in enumerate(lams):
            if not used[i]:
                still_open.append(
                    Branch([s.energy], [complex(lam)])
                )
        open_branches = still_open
    closed.extend(open_branches)
    return [b for b in closed if b.length >= min_length]


def find_branch_points(
    result: CBSResult,
    *,
    energy_window: Optional[tuple[float, float]] = None,
    match_tol: float = 0.5,
) -> List[BranchPoint]:
    """Interior extrema of ``Im k`` along tracked evanescent branches.

    Returns one :class:`BranchPoint` per detected turning point, sorted
    by energy.  ``energy_window`` restricts the search (e.g. to the band
    gap).
    """
    points: List[BranchPoint] = []
    a = result.cell_length
    for br in track_branches(result, match_tol=match_tol):
        kim = br.imag_k(a)
        if np.all(np.abs(kim) < 1e-12):
            continue  # propagating branch
        for i in range(1, br.length - 1):
            e = br.energies[i]
            if energy_window is not None and not (
                energy_window[0] <= e <= energy_window[1]
            ):
                continue
            d_prev = abs(kim[i]) - abs(kim[i - 1])
            d_next = abs(kim[i + 1]) - abs(kim[i])
            if d_prev > 0 >= d_next or d_prev >= 0 > d_next:
                points.append(BranchPoint(e, br.lams[i], float(kim[i])))
    points.sort(key=lambda p: p.energy)
    return points


def max_gap_decay(result: CBSResult,
                  energy_window: tuple[float, float]) -> float:
    """Largest dominant ``|Im k|`` inside an energy window.

    For a gapped system this is the branch-point decay rate — the
    quantity whose enhancement under bundling Figure 11 discusses
    ("the loop curvatures around the Fermi energy are enlarged").
    """
    lo, hi = energy_window
    vals = []
    for s in result.slices:
        if lo <= s.energy <= hi:
            ev = s.evanescent()
            if ev:
                vals.append(min(abs(m.k.imag) for m in ev))
    return float(max(vals)) if vals else 0.0
