"""Energy scans: the complex band structure as ``E ↦ {λ(E)}``.

The CBS is assembled by solving the ring QEP at a set of energies —
"200 independent calculations at equidistant energies in the interval
E ∈ [-1 eV, 1 eV]" for the paper's Figure 11.  The per-energy solves are
completely independent, which the paper exploits as yet another trivial
level of parallelism on top of the three Step-1 layers; here the scan
can map its energies over a thread executor the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.cbs.classify import CBSMode, ModeType, classify_modes
from repro.errors import SingularPencilError
from repro.parallel.executor import make_executor
from repro.qep.blocks import BlockTriple
from repro.ss.solver import SSConfig, SSHankelSolver


@dataclass
class EnergySlice:
    """CBS solutions at one energy."""

    energy: float
    modes: List[CBSMode] = field(default_factory=list)
    total_iterations: int = 0
    solve_seconds: float = 0.0

    @property
    def count(self) -> int:
        return len(self.modes)

    def propagating(self) -> List[CBSMode]:
        return [m for m in self.modes if m.mode_type is ModeType.PROPAGATING]

    def evanescent(self) -> List[CBSMode]:
        return [m for m in self.modes if m.mode_type is not ModeType.PROPAGATING]

    def lambdas(self) -> np.ndarray:
        return np.array([m.lam for m in self.modes], dtype=np.complex128)


@dataclass
class CBSResult:
    """A full CBS scan: one :class:`EnergySlice` per energy, ascending."""

    slices: List[EnergySlice]
    cell_length: float

    @property
    def energies(self) -> np.ndarray:
        return np.array([s.energy for s in self.slices])

    def propagating_points(self) -> np.ndarray:
        """``(E, Re k)`` pairs of all propagating modes — the data set
        overlaid on the conventional bands in paper Figure 6."""
        pts = [
            (s.energy, m.k.real)
            for s in self.slices
            for m in s.propagating()
        ]
        return np.array(pts, dtype=np.float64).reshape(-1, 2)

    def evanescent_points(self) -> np.ndarray:
        """``(E, Re k, Im k)`` triplets of all evanescent modes (the
        imaginary-k loops of Figure 11)."""
        pts = [
            (s.energy, m.k.real, m.k.imag)
            for s in self.slices
            for m in s.evanescent()
        ]
        return np.array(pts, dtype=np.float64).reshape(-1, 3)

    def min_imag_k(self) -> np.ndarray:
        """Per-energy smallest ``|Im k|`` among evanescent modes (the
        dominant tunneling decay rate; ``nan`` where none exist)."""
        out = np.full(len(self.slices), np.nan)
        for i, s in enumerate(self.slices):
            ev = s.evanescent()
            if ev:
                out[i] = min(abs(m.k.imag) for m in ev)
        return out

    def mode_counts(self) -> np.ndarray:
        return np.array([s.count for s in self.slices], dtype=np.int64)

    def total_iterations(self) -> int:
        return int(sum(s.total_iterations for s in self.slices))


class CBSCalculator:
    """Scans energies and classifies the resulting QEP eigenpairs.

    Parameters
    ----------
    blocks:
        Unit-cell block triple.
    config:
        Sakurai-Sugiura parameters (paper defaults when omitted).
    propagating_tol:
        ``| |λ|-1 |`` threshold for the propagating classification.
    energy_executor:
        Executor spec for the scan-level parallelism (``None``,
        ``"threads"``, or an int).

    Examples
    --------
    >>> from repro.models import MonatomicChain
    >>> from repro.cbs import CBSCalculator
    >>> chain = MonatomicChain(hopping=-1.0)
    >>> calc = CBSCalculator(chain.blocks(),
    ...                      config=__import__("repro.ss", fromlist=["SSConfig"]).SSConfig(
    ...                          n_int=16, n_mm=2, n_rh=2, seed=1))
    >>> result = calc.scan([0.0])
    >>> result.slices[0].count
    2
    """

    def __init__(
        self,
        blocks: BlockTriple,
        config: SSConfig | None = None,
        *,
        propagating_tol: float = 1e-6,
        energy_executor=None,
    ) -> None:
        self.blocks = blocks
        self.config = config or SSConfig()
        self.propagating_tol = float(propagating_tol)
        self._executor = make_executor(energy_executor)
        self._solver = SSHankelSolver(blocks, self.config)

    # ------------------------------------------------------------------

    def solve_energy(self, energy: float) -> EnergySlice:
        """One CBS slice; retries with a tiny energy nudge if the pencil
        is exactly singular at a quadrature shift (eigenvalue collision)."""
        import time

        t0 = time.perf_counter()
        try:
            res = self._solver.solve(energy)
        except SingularPencilError:
            nudge = 1e-9 * max(1.0, abs(energy))
            res = self._solver.solve(energy + nudge)
        modes = classify_modes(
            energy,
            res.eigenvalues,
            res.residuals,
            self.blocks.cell_length,
            propagating_tol=self.propagating_tol,
        )
        return EnergySlice(
            float(energy),
            modes,
            total_iterations=res.total_iterations(),
            solve_seconds=time.perf_counter() - t0,
        )

    def scan(self, energies: Sequence[float]) -> CBSResult:
        """Compute the CBS on an energy grid (ascending output order)."""
        energies = sorted(float(e) for e in energies)
        slices = self._executor.map(self.solve_energy, energies)
        return CBSResult(list(slices), self.blocks.cell_length)

    def scan_window(
        self, e_min: float, e_max: float, n_energies: int
    ) -> CBSResult:
        """Equidistant scan over ``[e_min, e_max]`` (paper Fig. 11 style)."""
        if n_energies < 1:
            raise ValueError(f"n_energies must be >= 1, got {n_energies}")
        return self.scan(np.linspace(e_min, e_max, n_energies))
