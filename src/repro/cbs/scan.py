"""Energy scans: the complex band structure as ``E ↦ {λ(E)}``.

The CBS is assembled by solving the ring QEP at a set of energies —
"200 independent calculations at equidistant energies in the interval
E ∈ [-1 eV, 1 eV]" for the paper's Figure 11.  The per-energy solves are
completely independent, which the paper exploits as yet another trivial
level of parallelism on top of the three Step-1 layers; here the scan
can map its energies over a thread executor the same way.

**Warm-started scans** (``warm_start=True``) trade that independence for
reuse: slices are solved in ascending energy order and each slice seeds
the next —

* the accepted eigenvectors replace the leading columns of the random
  source block ``V`` (eigenvectors vary smoothly along bands, so the
  next slice's subspace is mostly spanned already);
* the stacked Step-1 solutions become BiCG initial guesses for the
  adjacent energy (``P`` changes only by ``ΔE·I``, so the previous
  ``Y_j`` start with residual ``O(ΔE)`` — the Krylov-information sharing
  observed for adjacent shifts in the contour-integral self-energy
  follow-up, arXiv:1709.09324);
* on the direct path, the symbolic LU analysis (fill-reducing ordering)
  is computed once and reused by every factorization of the scan.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cbs.classify import CBSMode, ModeType, classify_modes
from repro.errors import SingularPencilError
from repro.parallel.executor import make_executor
from repro.qep.blocks import BlockTriple
from repro.solvers.batched import Step1WarmStart
from repro.ss.solver import SSConfig, SSHankelSolver, SSResult
from repro.utils.rng import complex_gaussian, default_rng


@dataclass
class EnergySlice:
    """CBS solutions at one energy (and, for k∥-resolved scans, at one
    transverse momentum).

    ``k_par`` is ``None`` for plain 1D scans; k∥-resolved workloads
    (:class:`repro.api.KParSpec`) stamp each slice with the transverse
    Bloch phase its blocks were built at.
    """

    energy: float
    modes: List[CBSMode] = field(default_factory=list)
    total_iterations: int = 0
    solve_seconds: float = 0.0
    k_par: Optional[float] = None

    @property
    def count(self) -> int:
        return len(self.modes)

    def propagating(self) -> List[CBSMode]:
        return [m for m in self.modes if m.mode_type is ModeType.PROPAGATING]

    def evanescent(self) -> List[CBSMode]:
        return [m for m in self.modes if m.mode_type is not ModeType.PROPAGATING]

    def lambdas(self) -> np.ndarray:
        return np.array([m.lam for m in self.modes], dtype=np.complex128)


#: Version of the CBSResult schema (in memory and as persisted by
#: :mod:`repro.io.results`).  Bump on incompatible layout changes.
#: Version 2 added the per-slice k∥ axis; loaders accept version-1
#: files (loaded with ``k_par = None``) and reject anything newer.
CBS_RESULT_SCHEMA_VERSION = 2


@dataclass
class CBSResult:
    """A full CBS scan: one :class:`EnergySlice` per energy, ascending.

    ``schema_version`` and ``provenance`` make a result a self-describing
    record: :func:`repro.api.compute` stamps the provenance block (job
    hash, ``repro.__version__``, the routed engine, per-shard tuning
    decisions) and :mod:`repro.io.results` persists/validates both.
    Results built directly by the legacy entry points carry an empty
    provenance block.
    """

    slices: List[EnergySlice]
    cell_length: float
    schema_version: int = CBS_RESULT_SCHEMA_VERSION
    provenance: Dict[str, Any] = field(default_factory=dict)

    @property
    def energies(self) -> np.ndarray:
        return np.array([s.energy for s in self.slices])

    def k_pars(self) -> List[float]:
        """The distinct transverse momenta in this result, ascending.

        Empty for plain 1D scans (every slice has ``k_par is None``).
        """
        return sorted(
            {s.k_par for s in self.slices if s.k_par is not None}
        )

    def at_kpar(self, k_par: Optional[float]) -> "CBSResult":
        """The k∥ column of this result at ``k_par`` (exact match).

        ``at_kpar(None)`` selects the plain (momentum-less) slices.
        The returned view shares slice objects with this result and
        carries the same provenance.
        """
        column = [s for s in self.slices if s.k_par == k_par]
        return CBSResult(
            column,
            self.cell_length,
            schema_version=self.schema_version,
            provenance=self.provenance,
        )

    def propagating_points(self) -> np.ndarray:
        """``(E, Re k)`` pairs of all propagating modes — the data set
        overlaid on the conventional bands in paper Figure 6."""
        pts = [
            (s.energy, m.k.real)
            for s in self.slices
            for m in s.propagating()
        ]
        return np.array(pts, dtype=np.float64).reshape(-1, 2)

    def evanescent_points(self) -> np.ndarray:
        """``(E, Re k, Im k)`` triplets of all evanescent modes (the
        imaginary-k loops of Figure 11)."""
        pts = [
            (s.energy, m.k.real, m.k.imag)
            for s in self.slices
            for m in s.evanescent()
        ]
        return np.array(pts, dtype=np.float64).reshape(-1, 3)

    def min_imag_k(self) -> np.ndarray:
        """Per-energy smallest ``|Im k|`` among evanescent modes (the
        dominant tunneling decay rate; ``nan`` where none exist)."""
        out = np.full(len(self.slices), np.nan)
        for i, s in enumerate(self.slices):
            ev = s.evanescent()
            if ev:
                out[i] = min(abs(m.k.imag) for m in ev)
        return out

    def mode_counts(self) -> np.ndarray:
        return np.array([s.count for s in self.slices], dtype=np.int64)

    def total_iterations(self) -> int:
        return int(sum(s.total_iterations for s in self.slices))


class CBSCalculator:
    """Scans energies and classifies the resulting QEP eigenpairs.

    Parameters
    ----------
    blocks:
        Unit-cell block triple.
    config:
        Sakurai-Sugiura parameters (paper defaults when omitted).
    propagating_tol:
        ``| |λ|-1 |`` threshold for the propagating classification.
    energy_executor:
        Executor spec for the scan-level parallelism (``None``,
        ``"threads"``, or an int).  Ignored when ``warm_start`` is on
        (warm-started slices are inherently sequential).
    warm_start:
        Seed each slice from the previous one (see module docstring).
        Implies ``keep_step1_solutions`` and ``lu_ordering_cache`` on
        the solver config.

    Examples
    --------
    >>> from repro.models import MonatomicChain
    >>> from repro.cbs import CBSCalculator
    >>> chain = MonatomicChain(hopping=-1.0)
    >>> calc = CBSCalculator(chain.blocks(),
    ...                      config=__import__("repro.ss", fromlist=["SSConfig"]).SSConfig(
    ...                          n_int=16, n_mm=2, n_rh=2, seed=1))
    >>> result = calc.scan([0.0])
    >>> result.slices[0].count
    2
    """

    def __init__(
        self,
        blocks: BlockTriple,
        config: SSConfig | None = None,
        *,
        propagating_tol: float = 1e-6,
        energy_executor=None,
        warm_start: bool = False,
    ) -> None:
        self.blocks = blocks
        config = config or SSConfig()
        self.warm_start = bool(warm_start)
        if self.warm_start:
            config = replace(
                config, keep_step1_solutions=True, lu_ordering_cache=True
            )
        self.config = config
        self.propagating_tol = float(propagating_tol)
        self._executor = make_executor(energy_executor)
        self._solver = SSHankelSolver(blocks, self.config)

    # ------------------------------------------------------------------

    def solve_energy(self, energy: float) -> EnergySlice:
        """One CBS slice; retries with a tiny energy nudge if the pencil
        is exactly singular at a quadrature shift (eigenvalue collision)."""
        return self._solve_energy_full(energy)[0]

    def _solve_energy_full(
        self,
        energy: float,
        v: Optional[np.ndarray] = None,
        warm: Optional[Step1WarmStart] = None,
    ) -> Tuple[EnergySlice, SSResult]:
        """One slice plus the underlying :class:`SSResult` (whose
        eigenvectors the warm-started scan feeds into the next slice)."""
        import time

        t0 = time.perf_counter()
        try:
            res = self._solver.solve(energy, v=v, warm=warm)
        except SingularPencilError:
            nudge = 1e-9 * max(1.0, abs(energy))
            res = self._solver.solve(energy + nudge, v=v, warm=warm)
        modes = classify_modes(
            energy,
            res.eigenvalues,
            res.residuals,
            self.blocks.cell_length,
            propagating_tol=self.propagating_tol,
        )
        return EnergySlice(
            float(energy),
            modes,
            total_iterations=res.total_iterations(),
            solve_seconds=time.perf_counter() - t0,
        ), res

    def _seed_v(self, prev: SSResult) -> np.ndarray:
        """Source block for the next slice: previous accepted eigenvectors
        blended into the leading columns of the deterministic random block.

        The random part is kept (not replaced) so the moment subspace
        still excites every ring eigendirection — a pure-eigenvector ``V``
        can lose modes the previous slice did not carry.  The eigenvector
        phases are fixed deterministically (largest entry real-positive)
        so the seed varies smoothly between adjacent slices.

        Handles ``prev.count < N_rh`` by touching only the available
        columns (the eigenvector block is ``(N, count)``, never padded or
        broadcast), and ``prev.count > N_rh`` (eigenvector surplus, e.g.
        after the orchestrator shrinks ``N_rh`` between slices) by
        keeping the ``N_rh`` vectors whose ``|λ|`` is closest to the unit
        circle.  Those are the slowly-varying, physically dominant modes;
        the previous truncation kept the *smallest*-``|λ|`` columns,
        which silently dropped every growing mode (``|λ| > 1``) and
        seeded the next slice with the fastest-decaying — least relevant
        — directions.
        """
        n, n_rh = self.blocks.n, self.config.n_rh
        rng = default_rng(self.config.seed)
        v = complex_gaussian(rng, (n, n_rh))
        count = int(prev.count)
        if count > n_rh:
            # |log|λ|| ranks distance from the unit circle symmetrically
            # for decaying and growing modes; accepted eigenvalues lie in
            # the ring so |λ| is bounded away from 0.
            closeness = np.abs(np.log(np.abs(prev.eigenvalues)))
            pick = np.argsort(closeness, kind="stable")[:n_rh]
            vecs = np.array(prev.vectors[:, pick], copy=True)
            count = n_rh
        elif count > 0:
            vecs = np.array(prev.vectors[:, :count], copy=True)
        if count > 0:
            lead = vecs[np.argmax(np.abs(vecs), axis=0), np.arange(count)]
            mag = np.abs(lead)
            safe = mag > 0.0
            phase = np.where(safe, lead, 1.0) / np.where(safe, mag, 1.0)
            vecs = vecs / phase[None, :]
            # Match the random columns' scale (‖column‖ ≈ √N) so the
            # eigenvector directions carry real weight in the blend.
            v[:, :count] = (v[:, :count] + np.sqrt(n) * vecs) / np.sqrt(2.0)
        return v

    def scan(self, energies: Sequence[float]) -> CBSResult:
        """Compute the CBS on an energy grid (ascending output order).

        With ``warm_start`` the slices run sequentially in ascending
        order, each seeded by its predecessor; otherwise they are mapped
        (possibly concurrently) as fully independent solves.
        """
        energies = sorted(float(e) for e in energies)
        if not self.warm_start:
            slices = self._executor.map(self.solve_energy, energies)
            return CBSResult(list(slices), self.blocks.cell_length)

        # The warm chain lives in the orchestrator module so process
        # shards, refinement passes, and this serial scan all run the
        # exact same slice-to-slice seeding loop.
        from repro.cbs.orchestrator import run_warm_chain

        slices = run_warm_chain(self, energies)
        return CBSResult(slices, self.blocks.cell_length)

    def scan_window(
        self, e_min: float, e_max: float, n_energies: int
    ) -> CBSResult:
        """Equidistant scan over ``[e_min, e_max]`` (paper Fig. 11 style)."""
        if n_energies < 1:
            raise ValueError(f"n_energies must be >= 1, got {n_energies}")
        return self.scan(np.linspace(e_min, e_max, n_energies))

    def orchestrated(self, orch=None) -> "ScanOrchestrator":
        """Deprecated: an adaptive
        :class:`repro.cbs.orchestrator.ScanOrchestrator` over the same
        blocks/config/tolerance.

        Declare the workload as a :class:`repro.api.CBSJob` with
        ``ExecutionSpec(mode="orchestrated")`` and run it through
        :func:`repro.api.compute` instead; this shim remains for
        backward compatibility and forwards to the same engine.
        """
        warnings.warn(
            "CBSCalculator.orchestrated() is deprecated; declare the "
            "workload as a repro.api.CBSJob with "
            "ExecutionSpec(mode='orchestrated') and run it through "
            "repro.api.compute(job).",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.cbs.orchestrator import ScanOrchestrator

        return ScanOrchestrator(
            self.blocks,
            self.config,
            propagating_tol=self.propagating_tol,
            warm_start=self.warm_start,
            orch=orch,
            _internal=True,
        )
