"""Classification of CBS solutions into propagating/evanescent modes.

Each QEP eigenvalue ``λ = exp(i k a)`` maps to a complex wave number
``k = Re k + i Im k``:

* ``|λ| = 1``  → **propagating** Bloch state (real ``k``; these fall on
  the conventional band structure);
* ``|λ| < 1``  → **evanescent, decaying** toward +z with decay length
  ``a / |ln |λ||``;
* ``|λ| > 1``  → **evanescent, growing** toward +z (equivalently
  decaying toward −z).

Modes with very small or very large ``|λ|`` decay within a single cell
and "contribute marginally on the physical phenomena" (paper §2) — the
reason the solver restricts itself to the ``λ_min`` ring in the first
place.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class ModeType(enum.Enum):
    """Physical character of a CBS solution."""

    PROPAGATING = "propagating"
    EVANESCENT_DECAYING = "evanescent-decaying"
    EVANESCENT_GROWING = "evanescent-growing"


@dataclass(frozen=True)
class CBSMode:
    """One classified CBS solution at one energy.

    Attributes
    ----------
    energy:
        Energy ``E`` of the slice (library units — Hartree for the DFT
        builders, model units otherwise).
    lam:
        QEP eigenvalue ``λ``.
    k:
        Complex wave number ``k = -i ln(λ) / a`` (principal branch, so
        ``Re k ∈ (-π/a, π/a]``).
    mode_type:
        Classification.
    decay_length:
        ``1 / |Im k|`` (``inf`` for propagating modes).
    residual:
        Relative QEP residual of the eigenpair.
    """

    energy: float
    lam: complex
    k: complex
    mode_type: ModeType
    decay_length: float
    residual: float

    @property
    def is_propagating(self) -> bool:
        return self.mode_type == ModeType.PROPAGATING


def classify_modes(
    energy: float,
    lams: np.ndarray,
    residuals: np.ndarray,
    cell_length: float,
    *,
    propagating_tol: float = 1e-6,
) -> list[CBSMode]:
    """Classify a batch of eigenvalues at one energy.

    ``propagating_tol`` is the relative tolerance on ``| |λ| - 1 |``; the
    paper quotes real-k agreement with conventional bands at the 1e-5
    level, so the default keeps an order of margin below typical solver
    accuracy.
    """
    lams = np.atleast_1d(np.asarray(lams, dtype=np.complex128))
    residuals = np.atleast_1d(np.asarray(residuals, dtype=np.float64))
    if residuals.shape[0] != lams.shape[0]:
        raise ValueError("lams and residuals must have equal length")
    out: list[CBSMode] = []
    for lam, res in zip(lams, residuals):
        mag = abs(lam)
        k = -1j * np.log(lam) / cell_length
        if abs(mag - 1.0) <= propagating_tol:
            mtype = ModeType.PROPAGATING
            decay = np.inf
        elif mag < 1.0:
            mtype = ModeType.EVANESCENT_DECAYING
            decay = cell_length / abs(np.log(mag))
        else:
            mtype = ModeType.EVANESCENT_GROWING
            decay = cell_length / abs(np.log(mag))
        out.append(
            CBSMode(float(energy), complex(lam), complex(k), mtype,
                    float(decay), float(res))
        )
    return out
