"""Complex band structure drivers: energy scans, classification, bands."""

from repro.cbs.classify import ModeType, CBSMode, classify_modes
from repro.cbs.scan import (
    CBS_RESULT_SCHEMA_VERSION,
    CBSCalculator,
    CBSResult,
    EnergySlice,
)
from repro.cbs.orchestrator import (
    OrchestratedScan,
    OrchestratorConfig,
    RefinePolicy,
    ScanOrchestrator,
    ScanReport,
    TuningPolicy,
    iter_warm_chain,
    run_warm_chain,
)
from repro.cbs.bands import band_structure, BandStructure
from repro.cbs.branch import track_branches, find_branch_points, BranchPoint

__all__ = [
    "ModeType",
    "CBSMode",
    "classify_modes",
    "CBS_RESULT_SCHEMA_VERSION",
    "CBSCalculator",
    "CBSResult",
    "EnergySlice",
    "iter_warm_chain",
    "OrchestratedScan",
    "OrchestratorConfig",
    "RefinePolicy",
    "ScanOrchestrator",
    "ScanReport",
    "TuningPolicy",
    "run_warm_chain",
    "band_structure",
    "BandStructure",
    "track_branches",
    "find_branch_points",
    "BranchPoint",
]
