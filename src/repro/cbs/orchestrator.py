"""Adaptive scan orchestration: whole CBS workloads, not single solves.

The paper's Figure 11 workload is "200 independent calculations at
equidistant energies" — a layer of trivial parallelism *above* the three
Step-1 layers that a single :class:`repro.cbs.scan.CBSCalculator` never
exploits beyond a thread pool.  This module turns an energy scan into an
orchestrated workload:

* **Process sharding** — the sorted energy grid is split into contiguous
  shards (:func:`repro.parallel.executor.chunk_spans`), each shipped to
  a worker process as one picklable :class:`_ShardSpec`.  Warm starts
  (eigenvector seeding + Step-1 initial guesses, PR 1) are preserved
  *inside* each shard — the chain is chunk-local — and the per-shard
  slice lists are merged back in energy order.

* **Auto-tuned SS parameters** — each shard opens with a cheap
  stochastic rank probe of the moment matrices
  (:meth:`repro.ss.solver.SSHankelSolver.rank_probe`) and grows
  ``N_mm``/``N_rh`` only when the Hankel singular-value spectrum shows
  the subspace is saturated (rank pressing against capacity, the
  condition under which eigenvalues are silently missed).  In
  spectrally quiet windows — consecutive slices with zero Hankel rank —
  the quadrature is cheapened by shrinking ``N_int``, and restored (with
  a re-solve) the moment the spectrum reappears.

* **Band-edge grid refinement** — where adjacent slices disagree (mode
  count changes, or the dominant decay rate ``min |Im k|`` jumps — the
  fixed grid's blind spot at band edges) the interval is bisected until
  agreement, a minimum spacing, or a depth cap.

* **Persistent slice cache** — finished slices land in a
  :class:`repro.io.slice_cache.SliceCache` keyed by a hash of the pencil
  blocks + config, so repeated scans, refinement passes, and restarted
  runs skip every energy already solved.

The plain ``CBSCalculator.scan`` warm path delegates to
:func:`run_warm_chain` here, so the serial scan, the process shards and
the refinement passes all execute the identical slice-to-slice loop.
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cbs.classify import classify_modes
from repro.cbs.scan import CBSCalculator, CBSResult, EnergySlice
from repro.io.slice_cache import SliceCache, context_key
from repro.parallel.executor import chunk_spans, make_executor
from repro.qep.blocks import BlockTriple
from repro.ss.solver import SSConfig, SSHankelSolver, SSResult

#: Progress callback ``progress(done, total)``: invoked after every
#: yielded slice of a streamed scan.  ``done`` counts yielded slices;
#: ``total`` is the current known grid size and **may grow** while the
#: stream runs (adaptive refinement inserts energies), so treat
#: ``done == total`` as "caught up", not "finished".  This one
#: signature is shared by every streaming entry point —
#: :func:`repro.api.compute` / :func:`repro.api.compute_iter`,
#: :meth:`ScanOrchestrator.iter_scan`, and
#: :meth:`repro.transport.scan.TransportScanner.iter_scan`.
ProgressFn = Callable[[int, int], None]

#: Cancellation callback ``should_cancel() -> bool``: polled *between*
#: units of work, never mid-solve.  The poll points are: after every
#: consumed base-grid shard, at the start of every refinement round
#: *and* after every shard within a round, and before every k∥
#: column's refinement — so a cancel lands within one shard's latency
#: wherever the scan happens to be.  Returning ``True`` ends the
#: stream early; everything already yielded stays valid (a partially
#: consumed refinement round is dropped whole, so the stream never
#: carries a torn round), and the blocking :func:`repro.api.compute`
#: returns the partial, energy-ordered, provenance-stamped result.
#: Shared by the same entry points as :data:`ProgressFn`.
CancelFn = Callable[[], bool]

#: Sentinel distinguishing "use the orchestrator's own cache context"
#: from an explicit ``None`` (cache disabled) in :meth:`_iter_refine`.
_DEFAULT_CTX = object()


# ----------------------------------------------------------------------
# policies
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TuningPolicy:
    """Knobs of the per-slice SS parameter auto-tuner.

    Attributes
    ----------
    enabled:
        Master switch; off reproduces the fixed-parameter scan.
    probe_rh:
        Source-block width of the stochastic rank probe (cost scales
        with it; 2 resolves any spectrum whose eigenvalue geometric
        multiplicities are ≤ 2, which covers the generic CBS case).
    probe_max_n_mm:
        Ceiling for the probe's own ``N_mm`` growth (the probe doubles
        its moment degree while its own Hankel matrix saturates).
    saturation_ratio:
        ``rank ≥ saturation_ratio × capacity`` counts as saturated —
        for the probe, for the pre-sizing, and for the in-scan regrow
        check on every full solve.
    headroom:
        Target capacity = ``headroom × estimated rank`` — the margin
        that keeps the singular-value gap clean (and absorbs modes that
        enter the ring as the scan moves in energy).
    max_n_mm, max_n_rh:
        Hard caps for the grown parameters.
    max_grow_rounds:
        Re-solve budget per energy when the full solve itself saturates.
    shrink_n_int:
        Allow halving ``N_int`` while the spectrum stays empty
        (spectrally quiet windows — hard gaps).  The first slice whose
        shrunk-contour solve shows nonzero rank is re-solved at the full
        ``N_int`` before anything is trusted.
    min_n_int:
        Floor for the shrunk quadrature.
    """

    enabled: bool = True
    probe_rh: int = 2
    probe_max_n_mm: int = 24
    saturation_ratio: float = 0.85
    headroom: float = 1.5
    max_n_mm: int = 24
    max_n_rh: int = 64
    max_grow_rounds: int = 3
    shrink_n_int: bool = True
    min_n_int: int = 8


@dataclass(frozen=True)
class RefinePolicy:
    """Knobs of the adaptive energy-grid refinement.

    A pair of adjacent slices *disagrees* — and its midpoint is solved —
    when the accepted mode count changes by more than ``count_tol``,
    when one slice has evanescent modes and the other none, or when the
    dominant decay rate ``min |Im k|`` jumps by more than ``kappa_tol``
    (in units of ``1/a``).  Bisection stops at ``min_de`` spacing,
    ``max_depth`` rounds, or ``max_new_slices`` insertions.
    """

    enabled: bool = True
    max_depth: int = 4
    count_tol: int = 0
    kappa_tol: float = 0.25
    min_de: float = 1e-3
    max_new_slices: int = 64


@dataclass(frozen=True)
class OrchestratorConfig:
    """How a :class:`ScanOrchestrator` runs a workload.

    Attributes
    ----------
    executor:
        Executor spec for the shard level (``"processes"``,
        ``("processes", k)``, ``"threads"``, an int, or ``None`` for
        serial).  Processes sidestep the GIL entirely — the paper's
        top-layer parallelism; the per-shard payload (blocks + config)
        is pickled once per shard.
    n_shards:
        Shard count; default = the executor's worker count.
    warm_start:
        Chunk-local warm starting inside each shard (recommended; the
        cross-shard boundaries start cold, which only costs iterations,
        never correctness).
    tuning, refine:
        The two adaptive policies.
    cache_dir:
        Slice-cache root directory; ``None`` disables persistence.
    """

    executor: object = "processes"
    n_shards: Optional[int] = None
    warm_start: bool = True
    tuning: TuningPolicy = TuningPolicy()
    refine: RefinePolicy = RefinePolicy()
    cache_dir: Optional[str] = None


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------


@dataclass
class ShardStats:
    """What one shard did (returned through the process boundary)."""

    e_lo: float
    e_hi: float
    n_energies: int
    cache_hits: int = 0
    solves: int = 0
    retunes: int = 0
    probe_rank: int = -1
    final_n_int: int = 0
    final_n_mm: int = 0
    final_n_rh: int = 0
    #: Wall time spent inside Step-1/2/3 solves in this shard — every
    #: attempt counted exactly once (cache hits contribute nothing).
    solve_seconds: float = 0.0


@dataclass
class ScanReport:
    """Aggregate telemetry of one orchestrated scan."""

    wall_seconds: float = 0.0
    n_shards: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    solves: int = 0
    retunes: int = 0
    #: Total solver wall time attributed to this run's actual solves
    #: (cache hits contribute zero; retune re-solves count every attempt
    #: exactly once — see :class:`ShardStats.solve_seconds`).
    solve_seconds: float = 0.0
    refine_rounds: int = 0
    #: Every bisection insertion as an ``(energy, k_par)`` pair —
    #: ``k_par`` is ``None`` on plain scans, so refinements from
    #: different k∥ columns stay distinguishable in telemetry.
    refined_energies: List[Tuple[float, Optional[float]]] = field(
        default_factory=list
    )
    shards: List[ShardStats] = field(default_factory=list)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def absorb(self, stats: ShardStats) -> None:
        self.shards.append(stats)
        self.cache_hits += stats.cache_hits
        self.cache_misses += stats.n_energies - stats.cache_hits
        self.solves += stats.solves
        self.retunes += stats.retunes
        self.solve_seconds += stats.solve_seconds

    def summary(self) -> str:
        tuned = {
            (s.final_n_int, s.final_n_mm, s.final_n_rh) for s in self.shards
        }
        # Scalar scans keep the historical rendering; k∥ scans say how
        # many momentum columns the refinements came from.
        kpar_cols = {kp for _, kp in self.refined_energies if kp is not None}
        refined = f"{len(self.refined_energies)} refined slice(s)"
        if kpar_cols:
            refined += f" across {len(kpar_cols)} k∥ column(s)"
        return (
            f"{self.n_shards} shard(s), {self.solves} solve(s) "
            f"({self.retunes} retune re-solves), cache "
            f"{self.cache_hits}/{self.cache_hits + self.cache_misses} hits "
            f"({100.0 * self.cache_hit_rate:.0f}%), "
            f"{refined} in "
            f"{self.refine_rounds} round(s), tuned (N_int,N_mm,N_rh) "
            f"∈ {sorted(tuned)}, wall {self.wall_seconds:.2f}s"
        )


@dataclass
class OrchestratedScan:
    """An orchestrated scan's modes plus its telemetry."""

    result: CBSResult
    report: ScanReport


# ----------------------------------------------------------------------
# the warm chain (shared with CBSCalculator.scan)
# ----------------------------------------------------------------------


def _solve_one(
    calc: CBSCalculator, energy: float, prev: Optional[SSResult]
) -> Tuple[EnergySlice, SSResult]:
    """One slice through the calculator, seeded from ``prev`` if warm."""
    v = calc._seed_v(prev) if (calc.warm_start and prev is not None) else None
    warm = calc._solver.last_step1 if calc.warm_start else None
    return calc._solve_energy_full(energy, v=v, warm=warm)


def iter_warm_chain(
    calc: CBSCalculator,
    energies: Sequence[float],
    cache: Optional[SliceCache] = None,
    k_par: Optional[float] = None,
) -> Iterator[EnergySlice]:
    """The sequential warm-started scan loop, one slice at a time.

    Each slice seeds the next (eigenvector blend + Step-1 initial
    guesses); a cache hit yields the stored slice (with
    ``solve_seconds`` zeroed — this run did no solve work for it) and
    restarts the chain cold at the next miss, since the adjacency
    premise no longer holds across the skipped interval.  k∥-resolved
    callers pass their column's ``k_par`` so every slice — including
    what lands in the cache — carries the momentum tag.
    """
    # A previous scan's cached solutions belong to a (possibly distant)
    # unrelated energy — the adjacency premise only holds within this
    # chain, so start cold.
    calc._solver.last_step1 = None
    prev: Optional[SSResult] = None
    for energy in energies:
        if cache is not None:
            hit = cache.get_hit(energy)
            if hit is not None:
                if k_par is not None:
                    hit.k_par = k_par
                yield hit
                prev = None
                calc._solver.last_step1 = None
                continue
        sl, prev = _solve_one(calc, energy, prev)
        if k_par is not None:
            sl.k_par = k_par
        if cache is not None:
            cache.put(sl)
        yield sl


def run_warm_chain(
    calc: CBSCalculator,
    energies: Sequence[float],
    cache: Optional[SliceCache] = None,
) -> List[EnergySlice]:
    """:func:`iter_warm_chain`, collected (the blocking scan path)."""
    return list(iter_warm_chain(calc, energies, cache))


# ----------------------------------------------------------------------
# auto-tuning helpers
# ----------------------------------------------------------------------


def _grow_size(
    target: int, n_mm: int, n_rh: int, pol: TuningPolicy
) -> Tuple[int, int]:
    """Smallest ``(n_mm, n_rh)`` with capacity ≥ target, growing the
    right-hand-side block first (extra RHS cost, but it keeps the moment
    degree — and with it the Hankel conditioning, which degrades as
    ``|λ|^(2 N_mm − 1)`` — low), then the moment degree."""
    n_rh2 = min(pol.max_n_rh, max(n_rh, math.ceil(target / max(n_mm, 1))))
    n_mm2 = n_mm
    if n_mm2 * n_rh2 < target:
        n_mm2 = min(pol.max_n_mm, max(n_mm, math.ceil(target / n_rh2)))
    return n_mm2, n_rh2


def _saturated(rank: int, capacity: int, pol: TuningPolicy) -> bool:
    return capacity > 0 and rank >= pol.saturation_ratio * capacity


def _has_ring_spectrum(res: SSResult, cfg: SSConfig) -> bool:
    """Whether a solve shows any spectrum *inside* the ring.

    Distinguishes a genuinely quiet window from quadrature leakage of
    out-of-ring eigenvalues: leaked Ritz values approximate eigenvalues
    outside the ring, so requiring an in-ring raw eigenvalue (or an
    accepted mode) is robust at any ``N_int``, where a bare rank check
    is not — coarse contours leak well above the noise floor.
    """
    if res.count > 0:
        return True
    if res.effective_rank() == 0 or res.raw_eigenvalues.size == 0:
        return False
    return bool(cfg.make_contour().contains_many(res.raw_eigenvalues).any())


def _pretune(
    blocks: BlockTriple, cfg: SSConfig, energy: float, pol: TuningPolicy
) -> Tuple[SSConfig, int]:
    """Size ``N_mm``/``N_rh`` from a stochastic rank probe at ``energy``.

    Returns the (possibly grown) config and the probe's rank estimate
    (−1 when the probe failed and tuning proceeds blind)."""
    from repro.errors import SingularPencilError
    from repro.ss.solver import SSHankelSolver

    solver = SSHankelSolver(blocks, cfg, validate=False)
    probe_mm = max(2, cfg.n_mm)
    try:
        while True:
            probe = solver.rank_probe(
                energy, n_rh=pol.probe_rh, n_mm=probe_mm
            )
            if not _saturated(probe.rank, probe.capacity, pol):
                break
            if probe_mm >= pol.probe_max_n_mm:
                break
            probe_mm = min(pol.probe_max_n_mm, 2 * probe_mm)
    except SingularPencilError:
        return cfg, -1
    m_hat = probe.rank
    target = math.ceil(pol.headroom * m_hat)
    if target > cfg.subspace_capacity:
        n_mm, n_rh = _grow_size(target, cfg.n_mm, cfg.n_rh, pol)
        if (n_mm, n_rh) != (cfg.n_mm, cfg.n_rh):
            cfg = replace(cfg, n_mm=n_mm, n_rh=n_rh)
    return cfg, m_hat


# ----------------------------------------------------------------------
# shard work units (picklable; solved by a module-level function)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _ShardSpec:
    """One contiguous (E, k∥) tile of a scan, shippable to a process.

    ``k_par`` tags the tile's transverse-momentum column (``None`` for
    plain 1D scans); warm chains stay within the tile, i.e. along the
    energy axis of one k∥ column.
    """

    blocks: BlockTriple
    config: SSConfig
    energies: Tuple[float, ...]
    propagating_tol: float
    warm_start: bool
    tuning: TuningPolicy
    cache_root: Optional[str] = None
    cache_context: Optional[str] = None
    k_par: Optional[float] = None


def _solve_shard(spec: _ShardSpec) -> Tuple[List[EnergySlice], ShardStats]:
    """Solve one shard: chunk-local warm chain + auto-tuning + cache.

    Module-level so :class:`repro.parallel.executor.ProcessExecutor` can
    pickle it; everything it needs rides in the spec.
    """
    energies = list(spec.energies)
    stats = ShardStats(
        e_lo=min(energies) if energies else math.nan,
        e_hi=max(energies) if energies else math.nan,
        n_energies=len(energies),
    )
    cache = (
        SliceCache(spec.cache_root, context=spec.cache_context)
        if spec.cache_root and spec.cache_context
        else None
    )
    pol = spec.tuning
    cfg = spec.config.resolved(spec.blocks.n)

    # The cross-energy engine replaces the per-slice loop wholesale: one
    # stacked Step-1 advances every uncached energy of the tile at once.
    # Auto-tuning re-solves individual energies with changed parameters,
    # which is incompatible with a shared stack — tuned shards fall back
    # to the per-slice loop (where the strategy degenerates to
    # ``"bicg-batched"`` per energy).
    if cfg.linear_solver == "bicg-batched-grid" and not pol.enabled:
        return _solve_shard_grid(spec, energies, stats, cache, cfg)

    def build(c: SSConfig) -> CBSCalculator:
        return CBSCalculator(
            spec.blocks,
            c,
            propagating_tol=spec.propagating_tol,
            warm_start=spec.warm_start,
        )

    if pol.enabled and energies:
        first_uncached = next(
            (e for e in energies if cache is None or e not in cache),
            None,
        )
        if first_uncached is not None:
            cfg, stats.probe_rank = _pretune(
                spec.blocks, cfg, first_uncached, pol
            )

    calc = build(cfg)
    base_n_int = cfg.n_int
    quiet = False
    slices: List[EnergySlice] = []
    prev: Optional[SSResult] = None

    for energy in energies:
        if cache is not None:
            hit = cache.get_hit(energy)
            if hit is not None:
                stats.cache_hits += 1
                hit.k_par = spec.k_par
                slices.append(hit)
                prev = None
                calc._solver.last_step1 = None
                continue

        if pol.enabled and pol.shrink_n_int:
            want = max(pol.min_n_int, base_n_int // 2) if quiet else base_n_int
            if want != calc.config.n_int:
                cfg = replace(cfg, n_int=want)
                calc = build(cfg)
                prev = None

        sl, res = _solve_one(calc, energy, prev)
        stats.solves += 1
        stats.solve_seconds += sl.solve_seconds

        if pol.enabled:
            # A shrunk-contour solve that found in-ring spectrum cannot
            # be trusted (coarser quadrature): restore N_int and redo.
            # Every attempt's time accumulates onto the slice, so the
            # final EnergySlice.solve_seconds is the full cost of
            # producing it — each attempt counted exactly once.
            if (
                quiet
                and calc.config.n_int < base_n_int
                and _has_ring_spectrum(res, calc.config)
            ):
                cfg = replace(cfg, n_int=base_n_int)
                calc = build(cfg)
                prev = None
                spent = sl.solve_seconds
                sl, res = _solve_one(calc, energy, None)
                stats.solves += 1
                stats.solve_seconds += sl.solve_seconds
                sl.solve_seconds += spent
                stats.retunes += 1

            # Grow only when the saturation can actually hide in-ring
            # modes: leakage of *out-of-ring* eigenvalues also fills the
            # Hankel spectrum (especially at shrunk N_int) but there is
            # nothing inside the ring to miss.
            rounds = 0
            while (
                _saturated(
                    res.effective_rank(), calc.config.subspace_capacity, pol
                )
                and _has_ring_spectrum(res, calc.config)
                and rounds < pol.max_grow_rounds
            ):
                target = math.ceil(pol.headroom * max(res.effective_rank(), 1))
                n_mm, n_rh = _grow_size(
                    target, calc.config.n_mm, calc.config.n_rh, pol
                )
                if (n_mm, n_rh) == (calc.config.n_mm, calc.config.n_rh):
                    break  # caps reached — keep what we have
                cfg = replace(cfg, n_mm=n_mm, n_rh=n_rh)
                calc = build(cfg)
                prev = None
                spent = sl.solve_seconds
                sl, res = _solve_one(calc, energy, None)
                stats.solves += 1
                stats.solve_seconds += sl.solve_seconds
                sl.solve_seconds += spent
                stats.retunes += 1
                rounds += 1

            quiet = not _has_ring_spectrum(res, calc.config)

        sl.k_par = spec.k_par
        slices.append(sl)
        prev = res
        if cache is not None:
            cache.put(sl)

    stats.final_n_int = cfg.n_int
    stats.final_n_mm = cfg.n_mm
    stats.final_n_rh = cfg.n_rh
    return slices, stats


def _solve_shard_grid(
    spec: _ShardSpec,
    energies: List[float],
    stats: ShardStats,
    cache: Optional[SliceCache],
    cfg: SSConfig,
) -> Tuple[List[EnergySlice], ShardStats]:
    """Cross-energy batched shard solve (``"bicg-batched-grid"``).

    Cache hits are served normally; all misses go into ONE stacked
    Step-1 call (:meth:`repro.ss.solver.SSHankelSolver.solve_grid`),
    whose per-energy results are bit-identical to cold per-slice
    ``"bicg-batched"`` solves.  The shard's ``warm_start`` flag is
    superseded — batching across energies is what the warm chain was
    approximating, applied exactly.
    """
    hits: dict = {}
    misses: List[float] = []
    for e in energies:
        hit = cache.get_hit(e) if cache is not None else None
        if hit is not None:
            stats.cache_hits += 1
            hit.k_par = spec.k_par
            hits[e] = hit
        else:
            misses.append(e)

    slices_by_e = dict(hits)
    if misses:
        solver = SSHankelSolver(spec.blocks, cfg)
        t0 = time.perf_counter()
        results = solver.solve_grid(misses)
        per_energy = (time.perf_counter() - t0) / len(misses)
        for e, res in zip(misses, results):
            modes = classify_modes(
                e,
                res.eigenvalues,
                res.residuals,
                spec.blocks.cell_length,
                propagating_tol=spec.propagating_tol,
            )
            sl = EnergySlice(
                float(e),
                modes,
                total_iterations=res.total_iterations(),
                solve_seconds=per_energy,
            )
            sl.k_par = spec.k_par
            stats.solves += 1
            stats.solve_seconds += per_energy
            if cache is not None:
                cache.put(sl)
            slices_by_e[e] = sl

    stats.final_n_int = cfg.n_int
    stats.final_n_mm = cfg.n_mm
    stats.final_n_rh = cfg.n_rh
    return [slices_by_e[e] for e in energies], stats


# ----------------------------------------------------------------------
# refinement predicates
# ----------------------------------------------------------------------


def _min_imag_k(sl: EnergySlice) -> float:
    ev = sl.evanescent()
    if not ev:
        return math.nan
    return min(abs(m.k.imag) for m in ev)


def _slices_disagree(a: EnergySlice, b: EnergySlice, pol: RefinePolicy) -> bool:
    if abs(a.count - b.count) > pol.count_tol:
        return True
    ka, kb = _min_imag_k(a), _min_imag_k(b)
    if math.isnan(ka) != math.isnan(kb):
        return True  # a band edge: evanescent spectrum (dis)appears
    if not math.isnan(ka) and abs(ka - kb) > pol.kappa_tol:
        return True
    return False


# ----------------------------------------------------------------------
# the orchestrator
# ----------------------------------------------------------------------


class ScanOrchestrator:
    """Process-parallel, auto-tuned, cache-backed CBS energy scans.

    Parameters
    ----------
    blocks:
        Unit-cell block triple.
    config:
        Base :class:`SSConfig`; the auto-tuner derives per-slice configs
        from it (``config.resolved(n)`` collapses ``"auto"`` first).
    propagating_tol:
        Mode-classification tolerance (as in :class:`CBSCalculator`).
    warm_start:
        Chunk-local warm chains inside shards.
    orch:
        The :class:`OrchestratorConfig` (default: process executor,
        tuning + refinement on, no cache).

    Examples
    --------
    >>> from repro.models import TransverseLadder
    >>> from repro.cbs.orchestrator import ScanOrchestrator, OrchestratorConfig
    >>> lad = TransverseLadder(width=2)
    >>> from repro.ss import SSConfig
    >>> orc = ScanOrchestrator(
    ...     lad.blocks(),
    ...     SSConfig(n_int=16, n_mm=2, n_rh=2, seed=1),
    ...     orch=OrchestratorConfig(executor=None),
    ... )
    >>> scan = orc.scan([0.0])
    >>> scan.result.slices[0].count
    4
    """

    def __init__(
        self,
        blocks: BlockTriple,
        config: Optional[SSConfig] = None,
        *,
        propagating_tol: float = 1e-6,
        warm_start: bool = True,
        orch: Optional[OrchestratorConfig] = None,
        cache_context: Optional[str] = None,
        _internal: bool = False,
    ) -> None:
        if not _internal:
            warnings.warn(
                "Constructing ScanOrchestrator directly is deprecated; "
                "declare the workload as a repro.api.CBSJob with "
                "ExecutionSpec(mode='orchestrated') and run it through "
                "repro.api.compute(job) / compute_iter(job).",
                DeprecationWarning,
                stacklevel=2,
            )
        self.blocks = blocks
        self.config = config or SSConfig()
        self.propagating_tol = float(propagating_tol)
        self.warm_start = bool(warm_start)
        self.orch = orch or OrchestratorConfig()
        self._executor = make_executor(self.orch.executor)
        # The tuning policy changes the effective per-slice solver
        # parameters, so it is part of the cache identity — a tuned and
        # an untuned run must never share slice entries.  repro.api
        # passes its job-derived cache context explicitly; the legacy
        # path derives one from the live blocks/config.
        if cache_context is not None:
            self._cache_context = cache_context if self.orch.cache_dir else None
        else:
            self._cache_context = (
                context_key(
                    blocks,
                    self.config,
                    self.propagating_tol,
                    extra=("tuning", self.orch.tuning),
                )
                if self.orch.cache_dir
                else None
            )

    # ------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return int(self.orch.n_shards or getattr(self._executor, "workers", 1))

    def _spec(self, energies: Sequence[float]) -> _ShardSpec:
        return self._tile_spec(
            self.blocks, energies, None, self._cache_context
        )

    def _tile_spec(
        self,
        blocks: BlockTriple,
        energies: Sequence[float],
        k_par: Optional[float],
        cache_context: Optional[str],
    ) -> _ShardSpec:
        """One (E, k∥) tile work unit (k∥-resolved scans pass per-column
        blocks and cache contexts; plain scans use the orchestrator's
        own)."""
        return _ShardSpec(
            blocks=blocks,
            config=self.config,
            energies=tuple(float(e) for e in energies),
            propagating_tol=self.propagating_tol,
            warm_start=self.warm_start and self.orch.warm_start,
            tuning=self.orch.tuning,
            cache_root=self.orch.cache_dir,
            cache_context=cache_context,
            k_par=k_par,
        )

    def _imap_shards(
        self, specs: List[_ShardSpec]
    ) -> Iterator[Tuple[List[EnergySlice], ShardStats]]:
        if len(specs) <= 1:
            for s in specs:
                yield _solve_shard(s)
            return
        yield from self._executor.imap(_solve_shard, specs)

    # ------------------------------------------------------------------

    def iter_scan(
        self,
        energies: Sequence[float],
        *,
        report: Optional[ScanReport] = None,
        progress: Optional[ProgressFn] = None,
        should_cancel: Optional[CancelFn] = None,
    ) -> Iterator[EnergySlice]:
        """Stream the orchestrated workload slice by slice.

        The sorted grid's shards are submitted up front; results are
        yielded in ascending energy order as each next-in-order shard
        completes (later shards keep computing while earlier slices are
        consumed).  Refinement insertions follow after the base grid,
        per bisection round, in ascending order within each round.

        ``progress(done, total)`` is called after every yielded slice
        (``total`` grows when refinement inserts energies);
        ``should_cancel()`` is polled between shards and refinement
        rounds — on cancellation the stream ends early with whatever
        was already produced.  Telemetry accumulates into ``report``
        (one is created and discarded when not supplied).
        """
        report = ScanReport() if report is None else report
        t0 = time.perf_counter()
        grid = sorted({float(e) for e in energies})
        done = 0
        total = len(grid)

        try:
            spans = chunk_spans(len(grid), self.n_shards)
            specs = [self._spec(grid[lo:hi]) for lo, hi in spans]
            report.n_shards = len(specs)

            slices: List[EnergySlice] = []
            shard_stream = self._imap_shards(specs)
            for shard_slices, stats in shard_stream:
                report.absorb(stats)
                slices.extend(shard_slices)
                for sl in shard_slices:
                    done += 1
                    if progress is not None:
                        progress(done, total)
                    yield sl
                if should_cancel is not None and should_cancel():
                    return
            slices.sort(key=lambda s: s.energy)

            for new_slices in self._iter_refine(slices, report, should_cancel):
                total += len(new_slices)
                for sl in new_slices:
                    done += 1
                    if progress is not None:
                        progress(done, total)
                    yield sl
        finally:
            report.wall_seconds = time.perf_counter() - t0

    def iter_kpar_scan(
        self,
        energies: Sequence[float],
        columns: Sequence[Tuple[float, BlockTriple]],
        *,
        cache_contexts: Optional[Sequence[Optional[str]]] = None,
        report: Optional[ScanReport] = None,
        progress: Optional[ProgressFn] = None,
        should_cancel: Optional[CancelFn] = None,
    ) -> Iterator[EnergySlice]:
        """Stream an orchestrated (E, k∥) product-grid scan.

        The 2D grid is sharded into (E, k∥) tiles: every k∥ column's
        energy grid is split into contiguous spans, all tiles are
        submitted to the executor up front, and slices are yielded in
        (k∥, E) order as each next-in-order tile completes — later
        columns keep computing while earlier slices are consumed.
        Warm chains run along the energy axis *within* a tile (one k∥
        column), never across columns.  Band-edge refinement then runs
        per column, since adjacent-slice disagreement is only
        meaningful at fixed k∥; refinement insertions stream after the
        base grid exactly as in :meth:`iter_scan`.

        Parameters
        ----------
        energies : sequence of float
            The shared energy grid (one column per k∥ point).
        columns : sequence of (float, BlockTriple)
            ``(k_par, blocks)`` per transverse momentum — the blocks
            built at that k∥ (e.g. through a ``k_par``-aware registry
            builder).
        cache_contexts : sequence of str or None, optional
            Per-column slice-cache context keys (k∥ folded in —
            :meth:`repro.api.CBSJob.cache_context` does this); required
            when the orchestrator has a cache directory.
        report, progress, should_cancel :
            As in :meth:`iter_scan` (``progress`` counts over the full
            product grid and grows with refinement).
        """
        report = ScanReport() if report is None else report
        t0 = time.perf_counter()
        grid = sorted({float(e) for e in energies})
        done = 0
        total = len(grid) * len(columns)
        try:
            if not grid or not columns:
                return
            if cache_contexts is None:
                cache_contexts = [None] * len(columns)
            if self.orch.cache_dir is not None and any(
                ctx is None for ctx in cache_contexts
            ):
                raise ValueError(
                    "iter_kpar_scan with cache_dir needs one cache "
                    "context per k∥ column"
                )
            n_tiles = max(1, math.ceil(self.n_shards / len(columns)))
            spans = chunk_spans(len(grid), n_tiles)
            specs = []
            for (k, blk), ctx in zip(columns, cache_contexts):
                for lo, hi in spans:
                    specs.append(
                        self._tile_spec(blk, grid[lo:hi], float(k), ctx)
                    )
            report.n_shards = len(specs)

            tiles_per_col = len(spans)
            col_slices: List[List[EnergySlice]] = [
                [] for _ in range(len(columns))
            ]
            for i, (shard_slices, stats) in enumerate(
                self._imap_shards(specs)
            ):
                report.absorb(stats)
                col_slices[i // tiles_per_col].extend(shard_slices)
                for sl in shard_slices:
                    done += 1
                    if progress is not None:
                        progress(done, total)
                    yield sl
                if should_cancel is not None and should_cancel():
                    return

            for ci, (k, blk) in enumerate(columns):
                if should_cancel is not None and should_cancel():
                    return
                column = sorted(col_slices[ci], key=lambda s: s.energy)
                for new_slices in self._iter_refine(
                    column,
                    report,
                    should_cancel,
                    blocks=blk,
                    k_par=float(k),
                    cache_context=cache_contexts[ci],
                ):
                    total += len(new_slices)
                    for sl in new_slices:
                        done += 1
                        if progress is not None:
                            progress(done, total)
                        yield sl
        finally:
            report.wall_seconds = time.perf_counter() - t0

    def scan(self, energies: Sequence[float]) -> OrchestratedScan:
        """Run the full orchestrated workload over ``energies``.

        The blocking form of :meth:`iter_scan`: collects the stream,
        merges it in energy order, and returns the result with its
        telemetry report.
        """
        report = ScanReport()
        slices = list(self.iter_scan(energies, report=report))
        slices.sort(key=lambda s: s.energy)
        return OrchestratedScan(
            CBSResult(slices, self.blocks.cell_length), report
        )

    def scan_window(
        self, e_min: float, e_max: float, n_energies: int
    ) -> OrchestratedScan:
        """Equidistant orchestrated scan over ``[e_min, e_max]``."""
        if n_energies < 1:
            raise ValueError(f"n_energies must be >= 1, got {n_energies}")
        return self.scan(np.linspace(e_min, e_max, n_energies))

    # ------------------------------------------------------------------

    def _iter_refine(
        self,
        slices: List[EnergySlice],
        report: ScanReport,
        should_cancel: Optional[CancelFn] = None,
        *,
        blocks: Optional[BlockTriple] = None,
        k_par: Optional[float] = None,
        cache_context: "Optional[str] | object" = _DEFAULT_CTX,
    ) -> Iterator[List[EnergySlice]]:
        """Bisection rounds as a generator of per-round slice batches.

        ``slices`` (the sorted scan so far) is extended and re-sorted in
        place each round, so the caller's list always holds the complete
        merged scan when the generator is exhausted.  k∥-resolved scans
        pass the column's ``blocks``/``k_par``/``cache_context`` so the
        bisection solves run against the right transverse momentum;
        plain scans use the orchestrator's own.
        """
        if blocks is None:
            blocks = self.blocks
        if cache_context is _DEFAULT_CTX:
            cache_context = self._cache_context
        pol = self.orch.refine
        if not pol.enabled or len(slices) < 2:
            return
        solved: Set[float] = {s.energy for s in slices}
        for _depth in range(pol.max_depth):
            if should_cancel is not None and should_cancel():
                return
            budget = pol.max_new_slices - len(report.refined_energies)
            if budget <= 0:
                break
            mids: List[float] = []
            for a, b in zip(slices, slices[1:]):
                if b.energy - a.energy <= pol.min_de:
                    continue
                if not _slices_disagree(a, b, pol):
                    continue
                mid = 0.5 * (a.energy + b.energy)
                if mid in solved:
                    continue
                mids.append(mid)
                if len(mids) >= budget:
                    break
            if not mids:
                break
            spans = chunk_spans(len(mids), self.n_shards)
            specs = [
                self._tile_spec(blocks, mids[lo:hi], k_par, cache_context)
                for lo, hi in spans
            ]
            round_slices: List[EnergySlice] = []
            for shard_slices, stats in self._imap_shards(specs):
                round_slices.extend(shard_slices)
                report.absorb(stats)
                if should_cancel is not None and should_cancel():
                    # Mid-round cancel: drop the partial round entirely
                    # (nothing from it was yielded, so the caller's
                    # stream stays consistent; the finished shard
                    # solves are still in the slice cache).
                    return
            solved.update(mids)
            report.refined_energies.extend((m, k_par) for m in mids)
            report.refine_rounds += 1
            slices.extend(round_slices)
            slices.sort(key=lambda s: s.energy)
            yield sorted(round_slices, key=lambda s: s.energy)
