"""Companion linearization of the QEP — the dense reference solver.

Multiplying ``P(λ)ψ = 0`` by ``-λ`` gives the monomial form

.. math::
    (λ^2 A_2 + λ A_1 + A_0)\\,ψ = 0, \\qquad
    A_2 = H_+,\\; A_1 = -(E - H_0),\\; A_0 = H_- ,

whose first companion linearization is the ``2N``-dimensional generalized
eigenproblem

.. math::
    \\begin{bmatrix} 0 & I \\\\ -A_0 & -A_1 \\end{bmatrix}
    \\begin{bmatrix} ψ \\\\ λψ \\end{bmatrix}
    = λ
    \\begin{bmatrix} I & 0 \\\\ 0 & A_2 \\end{bmatrix}
    \\begin{bmatrix} ψ \\\\ λψ \\end{bmatrix} .

``scipy.linalg.eig`` (LAPACK ``zggev``) solves it; eigenvalues at
``β = 0`` (λ = ∞) and ``α = 0`` (λ = 0) are infinitely fast growing /
decaying modes and are dropped.  This is the ground truth every iterative
path (Sakurai-Sugiura, OBM) is validated against in the tests, and also
the ``O((2N)^3)`` "solve everything densely" baseline whose cost the
paper's method avoids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp

from repro.qep.blocks import BlockTriple


def companion_pencil(
    blocks: BlockTriple, energy: complex
) -> Tuple[np.ndarray, np.ndarray]:
    """Dense companion pair ``(A, B)`` with ``A x = λ B x``."""
    dense = blocks.as_dense()
    n = dense.n
    a2 = np.asarray(dense.hp, dtype=np.complex128)
    a1 = -(energy * np.eye(n, dtype=np.complex128) - dense.h0)
    a0 = np.asarray(dense.hm, dtype=np.complex128)
    A = np.zeros((2 * n, 2 * n), dtype=np.complex128)
    B = np.zeros((2 * n, 2 * n), dtype=np.complex128)
    eye = np.eye(n, dtype=np.complex128)
    A[:n, n:] = eye
    A[n:, :n] = -a0
    A[n:, n:] = -a1
    B[:n, :n] = eye
    B[n:, n:] = a2
    return A, B


@dataclass
class QEPSolution:
    """Eigenpairs of the QEP: ``eigenvalues[i]`` with column ``vectors[:, i]``."""

    eigenvalues: np.ndarray
    vectors: np.ndarray

    @property
    def count(self) -> int:
        return int(self.eigenvalues.shape[0])

    def sorted_by_abs(self) -> "QEPSolution":
        order = np.argsort(np.abs(self.eigenvalues))
        return QEPSolution(self.eigenvalues[order], self.vectors[:, order])


def solve_qep_dense(
    blocks: BlockTriple,
    energy: complex,
    *,
    drop_tol: float = 1e-12,
) -> QEPSolution:
    """All finite, nonzero eigenpairs of the QEP via dense linearization.

    Parameters
    ----------
    blocks, energy:
        Problem definition.
    drop_tol:
        Pairs with ``|β| <= drop_tol * max|β|`` (λ = ∞) or
        ``|α| <= drop_tol * max|α|`` (λ = 0) are discarded.

    Notes
    -----
    Cost is ``O((2N)^3)`` time and ``O((2N)^2)`` memory — only usable for
    validation-sized problems (N up to a few thousand).
    """
    A, B = companion_pencil(blocks, energy)
    w, vr = sla.eig(A, B, homogeneous_eigvals=True, right=True)
    alpha, beta = w[0], w[1]
    amax = float(np.max(np.abs(alpha))) or 1.0
    bmax = float(np.max(np.abs(beta))) or 1.0
    finite = (np.abs(beta) > drop_tol * bmax) & (np.abs(alpha) > drop_tol * amax)
    lam = np.asarray(alpha[finite] / beta[finite])
    n = blocks.n
    vecs = vr[:n, finite]
    # Normalize columns for downstream residual checks.
    norms = np.linalg.norm(vecs, axis=0)
    norms[norms == 0.0] = 1.0
    vecs = vecs / norms
    return QEPSolution(lam, vecs)


def filter_eigenpairs(
    solution: QEPSolution,
    *,
    rmin: float = 0.0,
    rmax: float = np.inf,
    residual_fn=None,
    residual_tol: Optional[float] = None,
) -> QEPSolution:
    """Keep eigenpairs with ``rmin < |λ| < rmax`` (and small residual).

    ``residual_fn(λ, ψ) -> float`` is applied when ``residual_tol`` is
    given; pairs above the tolerance are discarded.  This is the common
    post-filter for both the dense reference and the SS solver: the paper
    keeps only ``λ_min < |λ| < 1/λ_min`` (Eq. (5)).
    """
    mags = np.abs(solution.eigenvalues)
    keep = (mags > rmin) & (mags < rmax)
    if residual_tol is not None and residual_fn is not None:
        for i in np.nonzero(keep)[0]:
            if residual_fn(solution.eigenvalues[i], solution.vectors[:, i]) > residual_tol:
                keep[i] = False
    return QEPSolution(solution.eigenvalues[keep], solution.vectors[:, keep])


def count_in_annulus(
    blocks: BlockTriple, energy: complex, rmin: float, rmax: float
) -> int:
    """Number of QEP eigenvalues in the annulus (dense count; tests only).

    Useful to size the Sakurai-Sugiura subspace: the Hankel capacity
    ``N_rh x N_mm`` must be at least this count for exact extraction.
    """
    sol = solve_qep_dense(blocks, energy)
    mags = np.abs(sol.eigenvalues)
    return int(np.count_nonzero((mags > rmin) & (mags < rmax)))


def spectral_pairing_defect(solution: QEPSolution) -> float:
    """How far the spectrum is from exact ``λ ↔ 1/λ̄`` pairing.

    For a bulk triple at real energy, eigenvalues come in
    ``(λ, 1/λ̄)`` pairs (a consequence of ``P(z)^† = P(1/z̄)``).  Returns
    the maximum over eigenvalues of the distance from ``1/λ̄`` to the
    nearest other eigenvalue, normalized by ``|λ|`` — near zero when the
    pairing holds.  Used by property-based tests.
    """
    lam = solution.eigenvalues
    if lam.size == 0:
        return 0.0
    partners = 1.0 / np.conj(lam)
    worst = 0.0
    for i, p in enumerate(partners):
        dist = np.min(np.abs(lam - p))
        worst = max(worst, float(dist / max(abs(p), 1e-300)))
    return worst
