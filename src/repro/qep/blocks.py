"""Unit-cell block triple ``(H_{n,n-1}, H_{n,n}, H_{n,n+1})``.

For a bulk system whose Hamiltonian couples only nearest-neighbor unit
cells along the stacking axis, the KS equation in cell ``n`` reads
(paper Eq. (2))

.. math::
    -H_{n,n-1} |ψ_{n-1}⟩ + (E - H_{n,n}) |ψ_n⟩ - H_{n,n+1} |ψ_{n+1}⟩ = 0 ,

and in the bulk ``H_{n,n-1} = H_{n,n+1}^†`` with Hermitian ``H_{n,n}``.
This module holds that triple and the derived objects every solver needs:
the Bloch Hamiltonian ``H(λ) = H0 + λ H+ + λ^{-1} H-`` and structural
validation (Hermiticity pair), on which the paper's dual-system trick
``P(z)^† = P(1/z̄)`` rests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.errors import ConfigurationError
from repro.utils.memory import nbytes_of

Matrix = Union[np.ndarray, sp.spmatrix]


def _as_operator(m: Matrix) -> Matrix:
    if sp.issparse(m):
        return m.tocsr()
    a = np.asarray(m)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ConfigurationError(f"block must be square, got shape {a.shape}")
    return a


def _adjoint(m: Matrix) -> Matrix:
    if sp.issparse(m):
        return m.conj().T.tocsr()
    return m.conj().T


def _max_abs(m: Matrix) -> float:
    if sp.issparse(m):
        return float(np.max(np.abs(m.data))) if m.nnz else 0.0
    return float(np.max(np.abs(m))) if m.size else 0.0


def as_dense_complex(m: Matrix) -> np.ndarray:
    """A dense ``complex128`` copy of a (possibly sparse) block.

    The one conversion used by every dense-algebra consumer of block
    matrices (the transport engines, baselines, tests), so dtype/layout
    policy lives in a single place.
    """
    if sp.issparse(m):
        return m.toarray().astype(np.complex128)
    return np.asarray(m, dtype=np.complex128)


@dataclass(frozen=True)
class BlockTriple:
    """Container for ``(H-, H0, H+)`` = ``(H_{n,n-1}, H_{n,n}, H_{n,n+1})``.

    Blocks may be dense ndarrays or scipy sparse matrices; sparse blocks
    are converted to CSR.  ``cell_length`` is the stacking period ``a``
    (Bohr) used to convert ``λ ↔ k``; it defaults to 1 so model problems
    can quote ``k`` directly in units of ``1/a``.
    """

    hm: Matrix
    h0: Matrix
    hp: Matrix
    cell_length: float = 1.0

    def __post_init__(self) -> None:
        hm = _as_operator(self.hm)
        h0 = _as_operator(self.h0)
        hp = _as_operator(self.hp)
        n = h0.shape[0]
        if hm.shape != (n, n) or hp.shape != (n, n):
            raise ConfigurationError(
                f"block shapes differ: H-={hm.shape}, H0={h0.shape}, H+={hp.shape}"
            )
        if self.cell_length <= 0:
            raise ConfigurationError(
                f"cell_length must be positive, got {self.cell_length}"
            )
        object.__setattr__(self, "hm", hm)
        object.__setattr__(self, "h0", h0)
        object.__setattr__(self, "hp", hp)

    # -- basic properties ----------------------------------------------------

    @property
    def n(self) -> int:
        """Matrix dimension ``N`` (grid points × components)."""
        return self.h0.shape[0]

    @property
    def is_sparse(self) -> bool:
        return sp.issparse(self.h0)

    @property
    def nbytes(self) -> int:
        """Stored bytes of the three blocks."""
        return nbytes_of(self.hm) + nbytes_of(self.h0) + nbytes_of(self.hp)

    @property
    def nnz(self) -> int:
        """Total stored nonzeros (dense blocks count every entry)."""
        total = 0
        for m in (self.hm, self.h0, self.hp):
            total += m.nnz if sp.issparse(m) else m.size
        return int(total)

    # -- structure checks ------------------------------------------------------

    def hermiticity_defect(self) -> float:
        """``max(|H0 - H0†|, |H- - H+†|)`` — zero for a valid bulk triple."""
        d0 = self.h0 - _adjoint(self.h0)
        dp = self.hm - _adjoint(self.hp)
        return max(_max_abs(d0), _max_abs(dp))

    def validate_bulk(self, tol: float = 1e-10) -> None:
        """Raise unless the triple has the bulk symmetry within ``tol``.

        The Sakurai-Sugiura dual-system shortcut (solving the inner-circle
        systems as adjoints of the outer-circle systems) is only valid for
        triples that pass this check.
        """
        scale = max(_max_abs(self.h0), _max_abs(self.hp), 1.0)
        defect = self.hermiticity_defect()
        if defect > tol * scale:
            raise ConfigurationError(
                f"block triple violates bulk symmetry: defect {defect:.3e} "
                f"(tolerance {tol:.1e} x scale {scale:.3e})"
            )

    # -- assembly ----------------------------------------------------------------

    def bloch_hamiltonian(self, lam: complex) -> Matrix:
        """``H(λ) = H0 + λ H+ + λ^{-1} H-`` (sparse if blocks are sparse).

        For ``|λ| = 1`` and a valid bulk triple this is Hermitian and its
        eigenvalues are the conventional band energies at ``k = arg(λ)/a``.
        """
        lam = complex(lam)
        if lam == 0:
            raise ConfigurationError("λ = 0 has no Bloch Hamiltonian")
        h = self.h0 + lam * self.hp + (1.0 / lam) * self.hm
        return h.tocsr() if sp.issparse(h) else h

    def bloch_hamiltonian_k(self, k: float) -> Matrix:
        """``H(k)`` for a real wave number ``k`` (uses ``λ = exp(i k a)``)."""
        return self.bloch_hamiltonian(np.exp(1j * k * self.cell_length))

    def as_dense(self) -> "BlockTriple":
        """Densified copy (for the dense reference solvers)."""
        def dense(m):
            return m.toarray() if sp.issparse(m) else np.array(m)
        return BlockTriple(
            dense(self.hm), dense(self.h0), dense(self.hp), self.cell_length
        )

    def as_complex(self) -> "BlockTriple":
        """Copy with complex128 blocks (solvers work in complex arithmetic)."""
        def conv(m):
            if sp.issparse(m):
                return m.astype(np.complex128)
            return np.asarray(m, dtype=np.complex128)
        return BlockTriple(
            conv(self.hm), conv(self.h0), conv(self.hp), self.cell_length
        )

    # -- λ <-> k conversion -----------------------------------------------------

    def lam_to_k(self, lam: np.ndarray) -> np.ndarray:
        """Complex wave number ``k = -i ln(λ) / a`` (principal branch).

        ``Re k`` is the crystal momentum; ``Im k`` the inverse decay length
        of the evanescent mode.
        """
        lam = np.asarray(lam, dtype=np.complex128)
        return -1j * np.log(lam) / self.cell_length

    def k_to_lam(self, k: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`lam_to_k`: ``λ = exp(i k a)``."""
        return np.exp(1j * np.asarray(k, dtype=np.complex128) * self.cell_length)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = "sparse" if self.is_sparse else "dense"
        return f"BlockTriple(N={self.n}, {kind}, nnz={self.nnz}, a={self.cell_length:.3f})"
