"""Quadratic eigenvalue problem (QEP) representation of the CBS equation."""

from repro.qep.blocks import BlockTriple
from repro.qep.pencil import QuadraticPencil
from repro.qep.linearization import solve_qep_dense, companion_pencil, filter_eigenpairs
from repro.qep.matrixfree import MatrixFreeHamiltonian

__all__ = [
    "BlockTriple",
    "QuadraticPencil",
    "solve_qep_dense",
    "companion_pencil",
    "filter_eigenpairs",
    "MatrixFreeHamiltonian",
]
