"""The quadratic matrix pencil ``P(z)`` of the CBS eigenproblem.

Paper Eq. (4):

.. math::
    P(λ) = -λ^{-1} H_{n,n-1} + (E - H_{n,n}) - λ H_{n,n+1} .

Key structural identity (paper §3.2): for a bulk triple and **real** E,

.. math::
    P(z)^† = P(1/\\bar z),

because ``(z H+)^† = z̄ H-`` and ``(z^{-1} H-)^† = z̄^{-1} H+``.  The
inner-circle quadrature points of the annulus satisfy
``z^{(2)}_j = 1/\\bar z^{(1)}_j``, so the inner systems are exactly the
dual (adjoint) systems of the outer ones and one BiCG run solves both.

Array backend seam: the batched appliers — the per-iteration kernels of
the batched BiCG engine — route all array arithmetic through the
pencil's ``xp`` namespace and dtype, both supplied by an
:class:`repro.backends.base.ArrayBackend`.  A pencil constructed without
an explicit ``dtype`` is the host-side complex128 operator (bit-for-bit
the historical behavior under the default ``"numpy"`` backend);
:meth:`QuadraticPencil.solver_view` returns its reduced-precision or
device twin for the backend's inner solves.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import LinearOperator

from repro.backends.dtypes import COMPLEX_DTYPE, REAL_DTYPE
from repro.backends.registry import resolve_backend
from repro.errors import ConfigurationError
from repro.qep.blocks import BlockTriple


class QuadraticPencil:
    """Evaluates, applies, and assembles ``P(z) = (E - H0) - z H+ - z^{-1} H-``.

    Parameters
    ----------
    blocks:
        The unit-cell :class:`BlockTriple` (or, for a solver view, the
        triple returned by ``backend.solver_blocks``).
    energy:
        The real energy ``E`` at which the CBS is sought.  A complex
        energy is accepted (used for regularization probes) but disables
        the dual-system identity.
    backend:
        An :class:`repro.backends.base.ArrayBackend`, its registry name,
        or ``None`` for the default ``"numpy"`` backend.
    dtype:
        Arithmetic dtype for the batched appliers.  ``None`` (the
        default) selects the backend's accumulation dtype (complex128)
        with host-numpy arithmetic; passing an explicit dtype marks this
        pencil as a solver-side view running in the backend's ``xp``
        namespace (the convention used by :meth:`solver_view`).
    """

    def __init__(
        self,
        blocks: BlockTriple,
        energy: complex,
        backend=None,
        *,
        dtype=None,
    ) -> None:
        self.backend = resolve_backend(backend)
        self.blocks = blocks
        self.energy = complex(energy)
        self.dtype = (
            np.dtype(dtype) if dtype is not None
            else self.backend.complex_dtype
        )
        self._xp = self.backend.xp if dtype is not None else np
        # NEP-50-safe scalars: typed zero-dim scalars keep a reduced-
        # precision stack in its dtype where a python complex would too —
        # but explicitly, and bit-identically for complex128.
        self._e = self.dtype.type(self.energy)
        self._e_conj = self.dtype.type(self.energy.conjugate())
        self._identity: Optional[sp.spmatrix | np.ndarray] = None
        self._solver_view: Optional["QuadraticPencil"] = None

    # -- basic properties -----------------------------------------------------

    @property
    def n(self) -> int:
        return self.blocks.n

    @property
    def is_dual_symmetric(self) -> bool:
        """Whether ``P(z)^† = P(1/z̄)`` holds (real E + bulk triple)."""
        return abs(self.energy.imag) == 0.0

    @staticmethod
    def dual_shift(z: complex) -> complex:
        """The shift at which ``P`` equals the adjoint of ``P(z)``: ``1/z̄``."""
        z = complex(z)
        if z == 0:
            raise ConfigurationError("z = 0 has no dual shift")
        return 1.0 / np.conj(z)

    def solver_view(self) -> "QuadraticPencil":
        """The pencil the backend's inner solver iterates with.

        Returns ``self`` when the backend solves in this pencil's dtype
        and namespace (the ``"numpy"`` backend — no cast, no copy,
        bit-for-bit).  Otherwise builds (once, cached) a twin pencil on
        ``backend.solver_blocks`` in the backend's solve dtype — the
        complex64 operator for ``"numpy-mixed"``, the device operator
        for ``"cupy"``.
        """
        be = self.backend
        if be.solve_dtype == self.dtype and be.xp is self._xp:
            return self
        if self._solver_view is None:
            self._solver_view = QuadraticPencil(
                be.solver_blocks(self.blocks),
                self.energy,
                backend=be,
                dtype=be.solve_dtype,
            )
        return self._solver_view

    # -- application -----------------------------------------------------------

    def apply(self, z: complex, x: np.ndarray) -> np.ndarray:
        """``P(z) @ x`` without assembling ``P(z)``.

        ``x`` may be a vector (N,) or a block of vectors (N, m).
        """
        z = complex(z)
        if z == 0:
            raise ConfigurationError("P(z) is undefined at z = 0")
        b = self.blocks
        return self._e * x - (b.h0 @ x) - z * (b.hp @ x) - (b.hm @ x) / z

    def apply_adjoint(self, z: complex, x: np.ndarray) -> np.ndarray:
        """``P(z)^† @ x``.

        Uses the bulk identity ``P(z)^† = P(1/z̄)`` when valid (cheap: no
        adjoint blocks needed); otherwise falls back to explicit adjoint
        arithmetic ``(Ē - H0†) x - z̄ H+† x - z̄^{-1} H-† x`` with
        ``H+† = H-`` assumed by the bulk validation.
        """
        if self.is_dual_symmetric:
            return self.apply(self.dual_shift(z), x)
        zb = complex(z).conjugate()
        b = self.blocks
        return (
            self._e_conj * x
            - (b.h0 @ x)
            - zb * (b.hm @ x)
            - (b.hp @ x) / zb
        )

    # -- batched application ---------------------------------------------------

    @staticmethod
    def _stack_columns(x, xp):
        """Reorder a stack ``(S, N, m)`` into one matvec block ``(N, S*m)``."""
        s, n, m = x.shape
        return xp.moveaxis(x, 0, 1).reshape(n, s * m)

    @staticmethod
    def _unstack_columns(x, s: int, m: int, xp):
        """Inverse of :meth:`_stack_columns`."""
        x = xp.asarray(x)
        n = x.shape[0]
        return xp.moveaxis(x.reshape(n, s, m), 1, 0)

    def apply_batch(self, zs: np.ndarray, x: np.ndarray) -> np.ndarray:
        """``P(z_i) @ X_i`` for a whole stack of shifts in one sweep.

        Parameters
        ----------
        zs:
            Shifts, shape ``(S,)``.
        x:
            Stacked blocks, shape ``(S, N, m)`` — one ``N × m`` block per
            shift.

        The three block matvecs (``H0``, ``H+``, ``H-``) are each applied
        **once** to all ``S·m`` columns, so the per-shift combination is
        pure broadcasting — this is what makes the batched BiCG engine
        one vectorized matvec per iteration instead of ``S·m`` Python
        calls (the paper's middle/top parallel layers collapsed into
        BLAS-width work).
        """
        xp = self._xp
        zs = xp.atleast_1d(xp.asarray(zs, dtype=self.dtype))
        x = xp.asarray(x, dtype=self.dtype)
        if x.ndim != 3 or x.shape[0] != zs.shape[0]:
            raise ConfigurationError(
                f"need x of shape (S, N, m) with S = {zs.shape[0]}, "
                f"got {x.shape}"
            )
        if bool(xp.any(zs == 0)):
            raise ConfigurationError("P(z) is undefined at z = 0")
        b = self.blocks
        s, n, m = x.shape
        xm = self._stack_columns(x, xp)
        h0x = self._unstack_columns(b.h0 @ xm, s, m, xp)
        hpx = self._unstack_columns(b.hp @ xm, s, m, xp)
        hmx = self._unstack_columns(b.hm @ xm, s, m, xp)
        z = zs[:, None, None]
        return self._e * x - h0x - z * hpx - hmx / z

    def apply_adjoint_batch(self, zs: np.ndarray, x: np.ndarray) -> np.ndarray:
        """``P(z_i)^† @ X_i`` over a stack of shifts (see :meth:`apply_batch`).

        Uses the bulk identity ``P(z)^† = P(1/z̄)`` when valid; otherwise
        the explicit adjoint arithmetic with ``H+† = H-`` assumed by the
        bulk validation, exactly mirroring :meth:`apply_adjoint`.
        """
        xp = self._xp
        zs = xp.atleast_1d(xp.asarray(zs, dtype=self.dtype))
        if bool(xp.any(zs == 0)):
            raise ConfigurationError("P(z) is undefined at z = 0")
        if self.is_dual_symmetric:
            return self.apply_batch(1.0 / xp.conj(zs), x)
        x = xp.asarray(x, dtype=self.dtype)
        if x.ndim != 3 or x.shape[0] != zs.shape[0]:
            raise ConfigurationError(
                f"need x of shape (S, N, m) with S = {zs.shape[0]}, "
                f"got {x.shape}"
            )
        b = self.blocks
        s, n, m = x.shape
        xm = self._stack_columns(x, xp)
        h0x = self._unstack_columns(b.h0 @ xm, s, m, xp)
        hpx = self._unstack_columns(b.hp @ xm, s, m, xp)
        hmx = self._unstack_columns(b.hm @ xm, s, m, xp)
        zb = xp.conj(zs)[:, None, None]
        return self._e_conj * x - h0x - zb * hmx - hpx / zb

    def as_linear_operator(self, z: complex) -> LinearOperator:
        """A scipy ``LinearOperator`` for ``P(z)`` with adjoint support."""
        z = complex(z)
        return LinearOperator(
            shape=(self.n, self.n),
            dtype=COMPLEX_DTYPE,
            matvec=lambda x: self.apply(z, x),
            rmatvec=lambda x: self.apply_adjoint(z, x),
        )

    # -- assembly ----------------------------------------------------------------

    def assemble(self, z: complex):
        """Explicit ``P(z)`` (CSR if the blocks are sparse, dense otherwise).

        Used by the direct (sparse-LU) linear-solver strategy and by tests.
        """
        z = complex(z)
        if z == 0:
            raise ConfigurationError("P(z) is undefined at z = 0")
        b = self.blocks
        if b.is_sparse:
            eye = sp.identity(self.n, dtype=COMPLEX_DTYPE, format="csr")
            p = (self.energy * eye) - b.h0 - z * b.hp - (1.0 / z) * b.hm
            return p.tocsr()
        eye = np.eye(self.n, dtype=COMPLEX_DTYPE)
        return self.energy * eye - b.h0 - z * b.hp - (1.0 / z) * b.hm

    def diagonal(self, z: complex) -> np.ndarray:
        """``diag(P(z))`` (for Jacobi preconditioning), computed blockwise."""
        b = self.blocks
        def diag_of(m):
            return m.diagonal() if sp.issparse(m) else np.diagonal(m)
        z = complex(z)
        return (
            self.energy
            - diag_of(b.h0)
            - z * diag_of(b.hp)
            - diag_of(b.hm) / z
        ).astype(COMPLEX_DTYPE)

    # -- diagnostics --------------------------------------------------------------

    def residual(self, lam: complex, psi: np.ndarray) -> float:
        """Relative QEP residual ``||P(λ) ψ||₂ / ||ψ||₂``.

        This is the acceptance metric for extracted eigenpairs; modes are
        kept only when the residual is below the solver tolerance.
        """
        psi = np.asarray(psi)
        nrm = float(np.linalg.norm(psi))
        if nrm == 0.0:
            return np.inf
        return float(np.linalg.norm(self.apply(lam, psi))) / nrm

    def residuals(self, lams: np.ndarray, psis: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`residual` over eigenpair columns."""
        lams = np.atleast_1d(lams)
        out = np.empty(lams.shape[0], dtype=REAL_DTYPE)
        for i, lam in enumerate(lams):
            out[i] = self.residual(lam, psis[:, i])
        return out

    def dual_identity_defect(self, z: complex, probes: int = 3,
                             rng=None) -> float:
        """Numerical check of ``P(z)^† = P(1/z̄)`` via random probes.

        Returns ``max_x |P(1/z̄) x - P(z)^† x| / |x|`` over a few random
        vectors — a direct verification of the identity the dual-BiCG
        trick relies on (used by tests and by ``validate`` paths).
        """
        from repro.utils.rng import default_rng, complex_gaussian

        rng = default_rng(rng)
        b = self.blocks
        zb = np.conj(complex(z))
        worst = 0.0
        for _ in range(probes):
            x = complex_gaussian(rng, self.n)
            via_dual = self.apply(self.dual_shift(z), x)
            explicit = (
                np.conj(self.energy) * x
                - (b.h0.conj().T @ x)
                - zb * (b.hp.conj().T @ x)
                - (b.hm.conj().T @ x) / zb
            )
            worst = max(
                worst,
                float(np.linalg.norm(via_dual - explicit) / np.linalg.norm(x)),
            )
        return worst

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"QuadraticPencil(N={self.n}, E={self.energy:.6g})"
