"""Matrix-free application of the KS block triple.

The paper's memory headline rests on never storing the Hamiltonian:
"by using an iterative solver, we do not have to store the large sparse
Hamiltonian matrix explicitly, but it suffices to multiply the
Hamiltonian matrix with vectors" (§1).  This module applies the three
blocks directly from their physical ingredients:

* kinetic term — the FD stencil evaluated by array slicing/rolling
  (x, y periodic in-plane; the z taps split between ``H0`` and ``H±``);
* local potential — a stored diagonal (O(N));
* nonlocal projectors — the Kleinman-Bylander pieces
  ``χ = (χ-, χ0, χ+)`` kept as index/value lists (O(support) each), with

  .. math::
      H_0 x = … + Σ ε [χ_0 (χ_0^† x) + χ_- (χ_-^† x) + χ_+ (χ_+^† x)],
      \\qquad
      H_+ x = … + Σ ε [χ_0 (χ_+^† x) + χ_- (χ_0^† x)] .

Memory: ``O(N)`` for the diagonal + ``O(Σ support)`` for projectors,
versus the assembled CSR blocks' ``O(N·taps + Σ support²)`` — the
measured ratio is reported by :meth:`MatrixFreeHamiltonian.memory_report`
and exercised in the tests against
:class:`repro.dft.hamiltonian.KSHamiltonianBuilder` output.

Use with the iterative path directly::

    mf = MatrixFreeHamiltonian(structure, grid)
    apply_p  = lambda x: mf.pencil_apply(E, z, x)
    apply_ph = lambda x: mf.pencil_apply_adjoint(E, z, x)
    result = bicg_dual(apply_p, apply_ph, v, v)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dft.pseudopotential import pseudopotential_for
from repro.dft.structure import CrystalStructure
from repro.errors import ConfigurationError
from repro.grid.grid import RealSpaceGrid
from repro.grid.stencil import central_second_derivative_coefficients
from repro.utils.memory import MemoryReport


@dataclass
class _Projector:
    """One KB projector split into cell pieces (offset → indices/values)."""

    energy_over_norm: float
    pieces: Dict[int, Tuple[np.ndarray, np.ndarray]]  # offset → (flat, vals)


class MatrixFreeHamiltonian:
    """Applies ``H0``, ``H+``, ``H-`` (and the pencil) without assembly.

    Parameters mirror :class:`repro.dft.hamiltonian.KSHamiltonianBuilder`;
    results are verified against it in the tests to machine precision.
    """

    def __init__(
        self,
        structure: CrystalStructure,
        grid: RealSpaceGrid,
        *,
        nf: int = 4,
        include_nonlocal: bool = True,
        external_potential: Optional[np.ndarray] = None,
    ) -> None:
        if grid.nz < nf:
            raise ConfigurationError(
                f"grid nz={grid.nz} thinner than the stencil width nf={nf}"
            )
        self.grid = grid
        self.nf = int(nf)
        self.coeff = central_second_derivative_coefficients(nf)
        self.diagonal = self._build_diagonal(structure, external_potential)
        self.projectors: List[_Projector] = (
            self._build_projectors(structure) if include_nonlocal else []
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _build_diagonal(self, structure, external_potential) -> np.ndarray:
        g = self.grid
        hx, hy, hz = g.spacing
        c0 = self.coeff[self.nf]
        diag = np.full(
            g.npoints,
            -0.5 * c0 * (1.0 / hx**2 + 1.0 / hy**2 + 1.0 / hz**2),
            dtype=np.float64,
        )
        for atom in structure.atoms:
            pseudo = pseudopotential_for(atom.symbol)
            ix, iy, iz_raw, dx, dy, dz = g.points_near(
                np.asarray(atom.position), pseudo.local.cutoff
            )
            if ix.size == 0:
                continue
            r = np.sqrt(dx * dx + dy * dy + dz * dz)
            iz = np.mod(iz_raw, g.nz)
            flat = (iz * g.ny + iy) * g.nx + ix
            np.add.at(diag, flat, pseudo.local.evaluate(r))
        if external_potential is not None:
            diag = diag + np.asarray(external_potential, dtype=np.float64)
        return diag

    def _build_projectors(self, structure) -> List[_Projector]:
        g = self.grid
        out: List[_Projector] = []
        for atom in structure.atoms:
            pseudo = pseudopotential_for(atom.symbol)
            for proj in pseudo.projectors:
                ix, iy, iz_raw, dx, dy, dz = g.points_near(
                    np.asarray(atom.position), proj.cutoff
                )
                if ix.size == 0:
                    continue
                offsets = iz_raw // g.nz
                iz = iz_raw - offsets * g.nz
                flat = (iz * g.ny + iy) * g.nx + ix
                for chi in proj.evaluate(dx, dy, dz):
                    norm2 = float(np.vdot(chi, chi).real)
                    if norm2 <= 0.0:
                        continue
                    pieces = {
                        int(o): (flat[offsets == o], chi[offsets == o])
                        for o in (-1, 0, 1)
                        if np.any(offsets == o)
                    }
                    out.append(_Projector(proj.energy / norm2, pieces))
        return out

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return self.grid.npoints

    def _kinetic_offdiag(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Off-diagonal kinetic taps: returns (in-cell, up-coupling,
        down-coupling) contributions of ``-½∇²``.

        The up/down parts are what multiplies ``ψ_{n±1}`` — i.e. the
        ``H±`` matvecs of the kinetic term.
        """
        g = self.grid
        hx, hy, hz = g.spacing
        f = x.reshape(g.nz, g.ny, g.nx)
        in_cell = np.zeros_like(f)
        up = np.zeros_like(f)
        down = np.zeros_like(f)
        for m in range(1, self.nf + 1):
            cm = self.coeff[self.nf + m]
            cx = -0.5 * cm / hx**2
            cy = -0.5 * cm / hy**2
            cz = -0.5 * cm / hz**2
            in_cell += cx * (np.roll(f, m, axis=2) + np.roll(f, -m, axis=2))
            in_cell += cy * (np.roll(f, m, axis=1) + np.roll(f, -m, axis=1))
            # z: rows near the top couple to the NEXT cell's bottom planes
            # (H+), rows near the bottom to the PREVIOUS cell's top (H-).
            rolled_up = np.roll(f, -m, axis=0)    # neighbor at iz + m
            rolled_dn = np.roll(f, m, axis=0)     # neighbor at iz - m
            mask_up = np.zeros((g.nz, 1, 1))
            mask_up[g.nz - m:] = 1.0
            mask_dn = np.zeros((g.nz, 1, 1))
            mask_dn[:m] = 1.0
            in_cell += cz * rolled_up * (1.0 - mask_up)
            in_cell += cz * rolled_dn * (1.0 - mask_dn)
            up += cz * rolled_up * mask_up
            down += cz * rolled_dn * mask_dn
        return (in_cell.reshape(-1), up.reshape(-1), down.reshape(-1))

    def _nonlocal(self, x: np.ndarray, row_off: int, col_off: int) -> np.ndarray:
        """``Σ ε χ_{row_off} (χ_{col_off}^† x)`` over all projectors."""
        out = np.zeros_like(x)
        for p in self.projectors:
            row = p.pieces.get(row_off)
            col = p.pieces.get(col_off)
            if row is None or col is None:
                continue
            cidx, cval = col
            coeff = p.energy_over_norm * np.dot(cval, x[cidx])
            ridx, rval = row
            out[ridx] += coeff * rval
        return out

    # -- public block applications ------------------------------------------

    def apply_h0(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        in_cell, _, _ = self._kinetic_offdiag(x)
        y = in_cell + self.diagonal * x
        y += self._nonlocal(x, 0, 0)
        y += self._nonlocal(x, -1, -1)
        y += self._nonlocal(x, 1, 1)
        return y

    def apply_hp(self, x: np.ndarray) -> np.ndarray:
        """``H_{n,n+1} x`` (x lives in cell n+1)."""
        x = np.asarray(x)
        _, up, _ = self._kinetic_offdiag(x)
        y = up
        y += self._nonlocal(x, 0, 1)
        y += self._nonlocal(x, -1, 0)
        return y

    def apply_hm(self, x: np.ndarray) -> np.ndarray:
        """``H_{n,n-1} x`` (x lives in cell n-1)."""
        x = np.asarray(x)
        _, _, down = self._kinetic_offdiag(x)
        y = down
        y += self._nonlocal(x, 0, -1)
        y += self._nonlocal(x, 1, 0)
        return y

    # -- pencil -----------------------------------------------------------------

    def pencil_apply(self, energy: float, z: complex, x: np.ndarray) -> np.ndarray:
        """``P(z) x = (E - H0) x - z H+ x - z^{-1} H- x``, matrix-free."""
        z = complex(z)
        if z == 0:
            raise ConfigurationError("P(z) undefined at z = 0")
        return (
            energy * x - self.apply_h0(x)
            - z * self.apply_hp(x)
            - self.apply_hm(x) / z
        )

    def pencil_apply_adjoint(self, energy: float, z: complex,
                             x: np.ndarray) -> np.ndarray:
        """``P(z)† x`` via the bulk identity ``P(z)† = P(1/z̄)``
        (all ingredients here are real, so the identity is exact)."""
        return self.pencil_apply(energy, 1.0 / np.conj(complex(z)), x)

    # -- memory ---------------------------------------------------------------------

    def memory_report(self) -> MemoryReport:
        rep = MemoryReport()
        rep.add("diagonal (local potential + kinetic center)", self.diagonal)
        proj_bytes = sum(
            idx.nbytes + val.nbytes
            for p in self.projectors
            for (idx, val) in p.pieces.values()
        )
        rep.add("projector pieces (indices + values)", proj_bytes)
        rep.add("stencil coefficients", self.coeff)
        return rep
