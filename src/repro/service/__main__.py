"""``python -m repro.service`` — run the CBS job service.

Example::

    python -m repro.service --store /tmp/cbs-store --port 8787 \
        --max-store-mb 256 --max-queue 8 --client-quota 4
"""

from __future__ import annotations

import argparse

from repro.service.http import serve


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="JSON-over-HTTP complex-band-structure job service",
    )
    parser.add_argument(
        "--store", required=True, help="result-store root directory"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787)
    parser.add_argument(
        "--max-store-mb",
        type=float,
        default=None,
        help="store eviction budget in MiB (default: unbounded)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=8,
        help="admission bound: jobs queued or running at once",
    )
    parser.add_argument(
        "--max-running",
        type=int,
        default=2,
        help="concurrent solves",
    )
    parser.add_argument(
        "--client-quota",
        type=int,
        default=4,
        help="distinct active jobs one client may hold",
    )
    args = parser.parse_args(argv)
    serve(
        args.store,
        host=args.host,
        port=args.port,
        max_store_bytes=(
            None
            if args.max_store_mb is None
            else int(args.max_store_mb * 1024 * 1024)
        ),
        max_queue=args.max_queue,
        max_running=args.max_running,
        client_quota=args.client_quota,
    )


if __name__ == "__main__":
    main()
