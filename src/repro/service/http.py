"""Thin JSON-over-HTTP front end for :class:`repro.service.JobService`.

Pure stdlib (``asyncio.start_server`` + hand-rolled HTTP/1.1 parsing —
no new dependencies), exposing the service as six endpoints:

========  =============================  =====================================
method    path                           meaning
========  =============================  =====================================
POST      ``/v1/jobs``                   submit a job dict; returns the ticket
GET       ``/v1/jobs/<id>``              lifecycle status snapshot
GET       ``/v1/jobs/<id>/stream``       NDJSON slice stream (close-delimited)
GET       ``/v1/jobs/<id>/result``       the finished job's full wire result
DELETE    ``/v1/jobs/<id>``              detach this client (cancel if last)
GET       ``/v1/metrics``                service counters + store stats
GET       ``/v1/healthz``                liveness probe
========  =============================  =====================================

Clients identify themselves with the ``X-CBS-Client`` header (or a
``?client=`` query parameter); quotas and cancellation interest are
keyed by that name, defaulting to ``"anon"``.  Every refusal is a
:class:`repro.service.ServiceRejected` mapped to its HTTP status with
the structured JSON error envelope as the body; admission backpressure
additionally sets a ``Retry-After`` header.

The stream endpoint sends one JSON line per slice
(:func:`repro.service.protocol.slice_to_wire` plus a ``seq`` counter)
and a final ``{"event": "end", "state": ...}`` line, then closes.  A
client that disconnects mid-stream is detached from the job exactly as
if it had called DELETE — a solve nobody else shares stops at the next
cancellation poll point.

Two entry points: :func:`serve` (blocking; what ``python -m
repro.service`` runs) and :class:`ServiceServer` (a thread harness that
runs the loop in the background — what the tests, the example client,
and the benchmark use).
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.service.protocol import (
    PROTOCOL_VERSION,
    ServiceRejected,
    encode_line,
    error_payload,
    slice_to_wire,
)
from repro.service.service import JobService
from repro.service.store import ResultStore

__all__ = ["ServiceServer", "serve"]

#: Request head size bound (request line + headers).
_MAX_HEAD = 64 * 1024
#: Request body size bound (job dicts are small).
_MAX_BODY = 4 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


def _head(
    status: int, *, content_length: Optional[int], extra: Dict[str, str]
) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        "Content-Type: application/json",
        "Connection: close",
    ]
    if content_length is not None:
        lines.append(f"Content-Length: {content_length}")
    for k, v in extra.items():
        lines.append(f"{k}: {v}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


class _Frontend:
    """One service bound to one asyncio server (internal)."""

    def __init__(self, service: JobService) -> None:
        self.service = service

    # -- response helpers ----------------------------------------------

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        obj: Dict[str, Any],
        *,
        extra: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(obj, sort_keys=True).encode("utf-8")
        writer.write(
            _head(status, content_length=len(body), extra=extra or {})
        )
        writer.write(body)
        await writer.drain()

    async def _send_reject(
        self, writer: asyncio.StreamWriter, exc: ServiceRejected
    ) -> None:
        extra = {}
        if exc.retry_after is not None:
            extra["Retry-After"] = f"{exc.retry_after:g}"
        await self._send_json(writer, exc.status, exc.payload(), extra=extra)

    # -- connection handler --------------------------------------------

    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._handle(reader, writer)
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass  # peer went away mid-request; nothing to answer
        except Exception as e:  # never let one request kill the server
            try:
                await self._send_json(
                    writer,
                    500,
                    error_payload("internal", f"{type(e).__name__}: {e}"),
                )
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        head = await reader.readuntil(b"\r\n\r\n")
        if len(head) > _MAX_HEAD:
            raise ServiceRejected(
                "invalid-request", "request head too large", status=413
            )
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split()
        if len(parts) != 3:
            await self._send_json(
                writer,
                400,
                error_payload("invalid-request", "malformed request line"),
            )
            return
        method, target, _version = parts
        headers = {}
        for line in header_lines:
            if ":" in line:
                k, v = line.split(":", 1)
                headers[k.strip().lower()] = v.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            await self._send_json(
                writer,
                413,
                error_payload("invalid-request", "request body too large"),
            )
            return
        body = await reader.readexactly(length) if length else b""

        url = urlsplit(target)
        query = parse_qs(url.query)
        client = headers.get(
            "x-cbs-client", query.get("client", ["anon"])[0]
        )
        try:
            await self._route(
                writer, method.upper(), url.path, client, body
            )
        except ServiceRejected as exc:
            await self._send_reject(writer, exc)

    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        client: str,
        body: bytes,
    ) -> None:
        service = self.service
        if path == "/v1/healthz" and method == "GET":
            await self._send_json(
                writer,
                200,
                {"protocol_version": PROTOCOL_VERSION, "status": "ok"},
            )
            return
        if path == "/v1/metrics" and method == "GET":
            await self._send_json(writer, 200, service.metrics())
            return
        if path == "/v1/jobs" and method == "POST":
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as e:
                raise ServiceRejected(
                    "invalid-job", f"body is not JSON: {e}", status=400
                ) from e
            ticket = await service.submit(payload, client=client)
            await self._send_json(writer, 200, ticket.as_dict())
            return
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            job_id, _, verb = rest.partition("/")
            if not job_id or "/" in verb:
                raise ServiceRejected(
                    "unknown-job", f"no route {path!r}", status=404
                )
            if method == "GET" and verb == "":
                await self._send_json(
                    writer, 200, await service.status(job_id)
                )
                return
            if method == "GET" and verb == "result":
                await self._send_json(
                    writer, 200, await service.result(job_id)
                )
                return
            if method == "GET" and verb == "stream":
                await self._stream(writer, job_id, client)
                return
            if method == "DELETE" and verb == "":
                await self._send_json(
                    writer, 200, await service.cancel(job_id, client=client)
                )
                return
        raise ServiceRejected(
            "unknown-route", f"no route {method} {path!r}", status=404
        )

    async def _stream(
        self, writer: asyncio.StreamWriter, job_id: str, client: str
    ) -> None:
        service = self.service
        # Raises unknown-job before any bytes are written.
        status = await service.status(job_id)
        writer.write(_head(200, content_length=None, extra={}))
        seq = 0
        try:
            async for sl in service.stream(job_id):
                line = slice_to_wire(sl)
                line["event"] = "slice"
                line["seq"] = seq
                seq += 1
                writer.write(encode_line(line))
                await writer.drain()
            status = await service.status(job_id)
            writer.write(
                encode_line(
                    {
                        "event": "end",
                        "protocol_version": PROTOCOL_VERSION,
                        "job_id": job_id,
                        "state": status["state"],
                        "n_slices": seq,
                        "error": status["error"],
                    }
                )
            )
            await writer.drain()
        except (ConnectionError, OSError):
            # The peer vanished mid-stream: detach it — the same path
            # as an explicit DELETE, so an unshared solve stops at the
            # next cancellation poll point.
            await service.cancel(job_id, client=client)
            raise


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


async def _amain(
    store_root: str,
    *,
    host: str,
    port: int,
    max_store_bytes: Optional[int],
    ready: Optional["_Ready"] = None,
    service_kwargs: Optional[Dict[str, Any]] = None,
) -> None:
    store = ResultStore(store_root, max_bytes=max_store_bytes)
    service = JobService(store, **(service_kwargs or {}))
    frontend = _Frontend(service)
    server = await asyncio.start_server(
        frontend.handle, host, port, limit=_MAX_HEAD
    )
    bound = server.sockets[0].getsockname()
    stop = asyncio.Event()
    if ready is not None:
        ready.publish(
            loop=asyncio.get_running_loop(),
            stop=stop,
            service=service,
            address=(bound[0], bound[1]),
        )
    else:
        print(f"repro.service listening on http://{bound[0]}:{bound[1]}")
    async with server:
        await stop.wait()
    await service.aclose()


class _Ready:
    """Cross-thread rendezvous for :class:`ServiceServer` (internal)."""

    def __init__(self) -> None:
        self.event = threading.Event()
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self.stop: Optional[asyncio.Event] = None
        self.service: Optional[JobService] = None
        self.address: Optional[Tuple[str, int]] = None

    def publish(self, *, loop, stop, service, address) -> None:
        self.loop = loop
        self.stop = stop
        self.service = service
        self.address = address
        self.event.set()


def serve(
    store_root: str,
    *,
    host: str = "127.0.0.1",
    port: int = 8787,
    max_store_bytes: Optional[int] = None,
    **service_kwargs: Any,
) -> None:
    """Run the service in the foreground until interrupted.

    This is what ``python -m repro.service`` calls; extra keyword
    arguments configure the :class:`~repro.service.JobService`
    (``max_queue``, ``max_running``, ``client_quota``, ...).
    """
    try:
        asyncio.run(
            _amain(
                store_root,
                host=host,
                port=port,
                max_store_bytes=max_store_bytes,
                service_kwargs=service_kwargs,
            )
        )
    except KeyboardInterrupt:
        pass


class ServiceServer:
    """A background-thread service harness.

    Runs the full stack — store, :class:`~repro.service.JobService`,
    HTTP front end — on a private event loop in a daemon thread, so
    synchronous code (tests, the example client, the benchmark) can
    talk to it with plain :mod:`http.client`.

    Parameters
    ----------
    store_root : str
        The :class:`~repro.service.ResultStore` root directory.
    host, port : str, int, optional
        Bind address; ``port=0`` (default) picks a free port, exposed
        as :attr:`address` after :meth:`start`.
    max_store_bytes : int or None, optional
        The store's eviction budget.
    **service_kwargs
        Forwarded to :class:`~repro.service.JobService`.

    Examples
    --------
    >>> import tempfile
    >>> with ServiceServer(tempfile.mkdtemp()) as server:
    ...     host, port = server.address
    """

    def __init__(
        self,
        store_root: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_store_bytes: Optional[int] = None,
        **service_kwargs: Any,
    ) -> None:
        self.store_root = store_root
        self.host = host
        self.port = port
        self.max_store_bytes = max_store_bytes
        self.service_kwargs = service_kwargs
        self._ready = _Ready()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "ServiceServer":
        """Launch the server thread; returns once it is accepting."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._thread_main, name="cbs-service-http", daemon=True
        )
        self._thread.start()
        if not self._ready.event.wait(timeout=30.0):
            raise RuntimeError("service thread failed to start in 30 s")
        return self

    def _thread_main(self) -> None:
        asyncio.run(
            _amain(
                self.store_root,
                host=self.host,
                port=self.port,
                max_store_bytes=self.max_store_bytes,
                ready=self._ready,
                service_kwargs=self.service_kwargs,
            )
        )

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (after :meth:`start`)."""
        if self._ready.address is None:
            raise RuntimeError("ServiceServer not started")
        return self._ready.address

    @property
    def service(self) -> JobService:
        """The in-process :class:`~repro.service.JobService` (metrics
        inspection in tests; counters are loop-thread state — read them
        only once the traffic you sent has settled)."""
        if self._ready.service is None:
            raise RuntimeError("ServiceServer not started")
        return self._ready.service

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        if self._thread is None:
            return
        loop, stop = self._ready.loop, self._ready.stop
        if loop is not None and stop is not None:
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # loop already gone
        self._thread.join(timeout=30.0)
        self._thread = None

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
