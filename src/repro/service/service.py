"""The asyncio job service: submit, dedup, stream, cancel.

:class:`JobService` turns :func:`repro.api.compute_iter` into a
long-lived, multi-client server core:

* **submit** validates a job payload through
  :meth:`repro.api.CBSJob.from_dict` and keys it by
  :meth:`~repro.api.CBSJob.job_hash` — the job's provenance identity
  *is* its job id;
* **in-flight dedup** — N concurrent submissions of the same job
  attach N subscribers to ONE running computation (exactly one
  ``compute_iter`` run; the ``solves_started`` metric pins it);
* **warm resubmit** — a completed job's slice set is recorded in the
  :class:`repro.service.ResultStore` under its hash, so an identical
  later submission is served entirely from the store (zero solves) and
  falls back to solving only if eviction broke the set;
* **streaming fan-out** — every subscriber receives the full slice
  stream in arrival order (base grid ascending in energy, refinement
  insertions after), late subscribers replay the finished prefix first;
* **backpressure + quotas** — a bounded admission queue rejects with a
  structured ``retry_after`` when full, and per-client quotas bound how
  many distinct jobs one client may have active;
* **cancellation** — a client detaching from a job releases its
  interest; the solve is stopped (via the
  :data:`repro.cbs.orchestrator.CancelFn` contract, between slices /
  shards / refinement rounds, never mid-solve) only when *no* client
  remains interested, so shared solves keep running.

Threading model: all service state lives on the event loop; the
blocking ``compute_iter`` drive runs on a small
:class:`~concurrent.futures.ThreadPoolExecutor` via
``run_in_executor`` and hands each slice back with
``loop.call_soon_threadsafe``.  Jobs whose execution mode is ``"pool"``
solve on the process-wide :meth:`repro.parallel.PersistentPool.shared`
workers, which the service warms with a long ``idle_timeout`` so the
fork cost is paid once per process, not once per request.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.api.facade import _provenance, compute_iter
from repro.api.spec import CBSJob
from repro.cbs.scan import CBSResult
from repro.errors import ConfigurationError
from repro.parallel.pool import PersistentPool
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ServiceRejected,
    result_to_wire,
)
from repro.service.store import ResultStore
from repro.transport.scan import TransportResult

__all__ = ["JobService", "JobTicket"]


def _sorted_slices(slices):
    """Canonical result ordering: (k∥, E) for k∥-resolved slices,
    ascending energy otherwise (matches :func:`repro.api.compute`)."""
    return sorted(
        slices,
        key=lambda s: (
            0.0 if getattr(s, "k_par", None) is None else float(s.k_par),
            float(s.energy),
        ),
    )

#: How long the service keeps the shared PersistentPool's workers warm
#: between jobs (seconds).
SERVICE_POOL_IDLE_TIMEOUT = 600.0


@dataclass
class JobTicket:
    """What :meth:`JobService.submit` hands back.

    Attributes
    ----------
    job_id:
        The job's :meth:`~repro.api.CBSJob.job_hash` — also the handle
        for ``status``/``stream``/``result``/``cancel``.
    state:
        Lifecycle state at submission time (one of
        :data:`repro.service.protocol.JOB_STATES`).
    deduped:
        ``True`` when this submission attached to an already-running
        identical job instead of starting a new solve.
    from_store:
        ``True`` when the job was served entirely from the
        :class:`~repro.service.ResultStore` (zero solves).
    """

    job_id: str
    state: str
    deduped: bool = False
    from_store: bool = False

    def as_dict(self) -> Dict[str, Any]:
        return {
            "protocol_version": PROTOCOL_VERSION,
            "job_id": self.job_id,
            "state": self.state,
            "deduped": self.deduped,
            "from_store": self.from_store,
        }


@dataclass
class _JobRecord:
    """One job's event-loop-confined state (internal)."""

    job_id: str
    job: CBSJob
    transport: bool
    state: str = "queued"
    clients: Set[str] = field(default_factory=set)
    slices: List[Any] = field(default_factory=list)
    subscribers: List["asyncio.Queue"] = field(default_factory=list)
    cancel_event: threading.Event = field(default_factory=threading.Event)
    result: Optional[Any] = None
    error: Optional[str] = None
    task: Optional["asyncio.Task"] = None


class JobService:
    """The CBS job service core (front-end agnostic; see
    :mod:`repro.service.http` for the wire front end).

    Parameters
    ----------
    store : ResultStore
        The multi-tenant result store backing warm resubmits and slice
        persistence.
    max_queue : int, optional
        Admission bound: the maximum number of jobs queued *or* running
        at once.  A submission beyond it is rejected with code
        ``"busy"`` and a ``retry_after`` hint (backpressure, not an
        error page).
    max_running : int, optional
        How many solves may run concurrently (an
        :class:`asyncio.Semaphore`; the rest wait in the queue).
    client_quota : int, optional
        Per-client bound on *distinct* active jobs.  Dedup attachments
        to a job the client already holds are free; a client at quota is
        refused (code ``"quota"``) while other clients proceed.
    retry_after : float, optional
        The backpressure hint (seconds) shipped with ``"busy"``
        rejects.
    solver_threads : int, optional
        Size of the executor-bridge thread pool driving
        ``compute_iter`` (each running job occupies one thread between
        slices; the heavy lifting is in solver processes when the job's
        execution mode says so).

    Notes
    -----
    Every public method must be called on the service's event loop
    (they are ``async`` or, like the internal publish hooks, scheduled
    onto the loop).  The thread-safety boundary is exactly
    ``loop.call_soon_threadsafe``.
    """

    def __init__(
        self,
        store: ResultStore,
        *,
        max_queue: int = 8,
        max_running: int = 2,
        client_quota: int = 4,
        retry_after: float = 1.0,
        solver_threads: int = 4,
    ) -> None:
        if max_queue < 1:
            raise ConfigurationError(
                f"JobService max_queue must be >= 1, got {max_queue}"
            )
        if max_running < 1:
            raise ConfigurationError(
                f"JobService max_running must be >= 1, got {max_running}"
            )
        if client_quota < 1:
            raise ConfigurationError(
                f"JobService client_quota must be >= 1, got {client_quota}"
            )
        self.store = store
        self.max_queue = max_queue
        self.client_quota = client_quota
        self.retry_after = float(retry_after)
        self._sem = asyncio.Semaphore(max_running)
        self._executor = ThreadPoolExecutor(
            max_workers=solver_threads, thread_name_prefix="cbs-service"
        )
        self._jobs: Dict[str, _JobRecord] = {}
        self._active: Set[str] = set()
        self.metrics_counters: Dict[str, int] = {
            "submitted": 0,
            "deduped": 0,
            "served_from_store": 0,
            "solves_started": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "rejected_busy": 0,
            "rejected_quota": 0,
        }
        # Keep the shared pool's forked workers warm across requests.
        PersistentPool.shared(idle_timeout=SERVICE_POOL_IDLE_TIMEOUT)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    async def submit(self, payload, client: str = "anon") -> JobTicket:
        """Admit one job; returns its :class:`JobTicket`.

        ``payload`` is a job dict (validated through
        :meth:`CBSJob.from_dict`) or a ready :class:`CBSJob`.

        Raises
        ------
        ServiceRejected
            ``"invalid-job"`` (400) for a payload that does not
            validate; ``"busy"`` (429, with ``retry_after``) when the
            admission queue is full; ``"quota"`` (429) when *this*
            client is at its distinct-active-jobs quota.
        """
        if isinstance(payload, CBSJob):
            job = payload
        else:
            try:
                job = CBSJob.from_dict(payload)
            except (ConfigurationError, TypeError, ValueError, KeyError) as e:
                raise ServiceRejected(
                    "invalid-job", f"job payload rejected: {e}", status=400
                ) from e
        job_id = job.job_hash()
        self.metrics_counters["submitted"] += 1

        # In-flight dedup: attach, don't re-solve.
        rec = self._jobs.get(job_id)
        if rec is not None and rec.state in ("queued", "running"):
            self._check_quota(client, job_id)
            rec.clients.add(client)
            self.metrics_counters["deduped"] += 1
            return JobTicket(job_id, rec.state, deduped=True)

        # Warm resubmit: the store can serve the whole job without a
        # single solve — unless eviction broke the set.
        warm = self._from_store(job_id, job)
        if warm is not None:
            self._jobs[job_id] = warm
            self.metrics_counters["served_from_store"] += 1
            return JobTicket(job_id, "done", from_store=True)

        # Admission control: backpressure first, then the per-client
        # quota (a full queue is everyone's problem; quota is yours).
        if len(self._active) >= self.max_queue:
            self.metrics_counters["rejected_busy"] += 1
            raise ServiceRejected(
                "busy",
                f"admission queue full ({len(self._active)}/"
                f"{self.max_queue} jobs active); retry later",
                retry_after=self.retry_after,
                status=429,
            )
        self._check_quota(client, job_id)

        rec = _JobRecord(
            job_id=job_id,
            job=job,
            transport=job.engine() == "transport",
            clients={client},
        )
        self._jobs[job_id] = rec
        self._active.add(job_id)
        rec.task = asyncio.get_running_loop().create_task(self._run(rec))
        return JobTicket(job_id, "queued")

    def _check_quota(self, client: str, job_id: str) -> None:
        held = {
            jid
            for jid in self._active
            if jid != job_id and client in self._jobs[jid].clients
        }
        if len(held) >= self.client_quota:
            self.metrics_counters["rejected_quota"] += 1
            raise ServiceRejected(
                "quota",
                f"client {client!r} already holds {len(held)} active "
                f"jobs (quota {self.client_quota})",
                status=429,
            )

    def _from_store(self, job_id: str, job: CBSJob) -> Optional[_JobRecord]:
        """A fully store-served done record, or ``None`` if the store
        cannot cover the job (no manifest, or an entry was evicted)."""
        manifest = self.store.get_manifest(job_id)
        if manifest is None:
            return None
        kind = manifest.get("kind", "cbs")
        transport = kind == "transport"
        slices = []
        for entry in manifest.get("entries", []):
            context, energy = entry[0], entry[1]
            sl = self.store.get(context, float(energy), transport=transport)
            if sl is None:
                return None
            if len(entry) >= 4:
                # Map-job entry: the store holds a plain slice; the
                # manifest carries the surrogate annotations.
                from repro.maps.surrogate import MapPixel

                sl = MapPixel(
                    sl.energy,
                    sl.modes,
                    total_iterations=sl.total_iterations,
                    solve_seconds=sl.solve_seconds,
                    k_par=sl.k_par,
                    solved=bool(entry[2]),
                    error_estimate=float(entry[3]),
                )
            slices.append(sl)
        slices = _sorted_slices(slices)
        if transport:
            cls: Any = TransportResult
        elif kind == "map":
            from repro.maps.surrogate import MapResult

            cls = MapResult
        else:
            cls = CBSResult
        result = cls(slices, float(manifest["cell_length"]))
        result.provenance = dict(manifest.get("provenance") or {})
        return _JobRecord(
            job_id=job_id,
            job=job,
            transport=transport,
            state="done",
            slices=slices,
            result=result,
        )

    # ------------------------------------------------------------------
    # execution bridge
    # ------------------------------------------------------------------

    async def _run(self, rec: _JobRecord) -> None:
        async with self._sem:
            if rec.cancel_event.is_set():
                self._settle(rec, "cancelled")
                return
            rec.state = "running"
            self.metrics_counters["solves_started"] += 1
            loop = asyncio.get_running_loop()
            try:
                await loop.run_in_executor(
                    self._executor, self._solve, rec, loop
                )
            except Exception as e:  # belt-and-braces; _solve catches too
                self._fail(rec, f"{type(e).__name__}: {e}")

    def _solve(self, rec: _JobRecord, loop) -> None:
        """Drive ``compute_iter`` to completion (solver thread)."""
        job = rec.job
        entries: List[List[Any]] = []
        solved: List[Any] = []
        try:
            stream = compute_iter(
                job, should_cancel=rec.cancel_event.is_set
            )
            is_map = job.map is not None
            for sl in stream:
                # Interpolated map pixels are predictions, not solver
                # output: they live in a map-spec-keyed namespace so a
                # plain scan can never mistake one for a real solve.
                # Genuinely solved pixels share the plain-scan contexts.
                interpolated = is_map and not getattr(sl, "solved", True)
                context = (
                    job.cache_context(
                        k_par=sl.k_par, interpolated=interpolated
                    )
                    if job.kpar is not None
                    else job.cache_context()
                )
                self.store.put(context, sl, transport=rec.transport)
                if is_map:
                    entries.append([
                        context,
                        float(sl.energy),
                        bool(getattr(sl, "solved", True)),
                        float(getattr(sl, "error_estimate", 0.0)),
                    ])
                else:
                    entries.append([context, float(sl.energy)])
                solved.append(sl)
                loop.call_soon_threadsafe(self._publish, rec, sl)
            if rec.cancel_event.is_set():
                loop.call_soon_threadsafe(self._settle, rec, "cancelled")
                return
            result = self._build_result(rec, entries, solved)
            loop.call_soon_threadsafe(self._complete, rec, result)
        except Exception as e:
            loop.call_soon_threadsafe(
                self._fail, rec, f"{type(e).__name__}: {e}"
            )

    def _build_result(self, rec: _JobRecord, entries, solved):
        """Assemble the result object and persist the job manifest
        (solver thread; touches only thread-safe store state)."""
        job = rec.job
        slices = _sorted_slices(solved)
        cell_length = job.system.build().cell_length
        engine = job.engine()
        if rec.transport:
            result: Any = TransportResult(slices, cell_length)
        elif engine == "map":
            from repro.maps.surrogate import MapResult

            result = MapResult(slices, cell_length)
        else:
            result = CBSResult(slices, cell_length)
        result.provenance = _provenance(job, engine)
        if rec.transport:
            kind = "transport"
        elif engine == "map":
            kind = "map"
        else:
            kind = "cbs"
        self.store.put_manifest(
            rec.job_id,
            {
                "kind": kind,
                "cell_length": float(cell_length),
                "provenance": result.provenance,
                "entries": entries,
            },
        )
        return result

    # -- loop-side settlement ------------------------------------------

    def _publish(self, rec: _JobRecord, sl) -> None:
        rec.slices.append(sl)
        for q in rec.subscribers:
            q.put_nowait(("slice", sl))

    def _complete(self, rec: _JobRecord, result) -> None:
        rec.result = result
        self._settle(rec, "done")

    def _fail(self, rec: _JobRecord, message: str) -> None:
        rec.error = message
        self._settle(rec, "failed")

    def _settle(self, rec: _JobRecord, state: str) -> None:
        rec.state = state
        self.metrics_counters[
            {"done": "completed", "failed": "failed", "cancelled": "cancelled"}[
                state
            ]
        ] += 1
        self._active.discard(rec.job_id)
        for q in rec.subscribers:
            q.put_nowait(("end", None))
        rec.subscribers.clear()

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def _record(self, job_id: str) -> _JobRecord:
        rec = self._jobs.get(job_id)
        if rec is None:
            raise ServiceRejected(
                "unknown-job", f"no job {job_id!r}", status=404
            )
        return rec

    async def status(self, job_id: str) -> Dict[str, Any]:
        """One job's lifecycle snapshot (state, slices so far, error)."""
        rec = self._record(job_id)
        return {
            "protocol_version": PROTOCOL_VERSION,
            "job_id": job_id,
            "state": rec.state,
            "n_slices": len(rec.slices),
            "clients": len(rec.clients),
            "error": rec.error,
        }

    async def stream(self, job_id: str):
        """Async-iterate the job's slices: finished prefix first, then
        live fan-out until the job settles.

        The snapshot and the subscription happen atomically (no await
        between them), so no slice is ever dropped or duplicated
        however late the subscriber arrives.
        """
        rec = self._record(job_id)
        q: asyncio.Queue = asyncio.Queue()
        snapshot = list(rec.slices)
        live = rec.state in ("queued", "running")
        if live:
            rec.subscribers.append(q)
        try:
            for sl in snapshot:
                yield sl
            if not live:
                return
            while True:
                kind, sl = await q.get()
                if kind == "end":
                    return
                yield sl
        finally:
            if q in rec.subscribers:
                rec.subscribers.remove(q)

    async def result(self, job_id: str) -> Dict[str, Any]:
        """The finished job's full wire result
        (:func:`repro.service.protocol.result_to_wire`).

        Raises
        ------
        ServiceRejected
            ``"not-done"`` (409) while queued/running or after a
            cancel; ``"failed"`` (500) carrying the error message.
        """
        rec = self._record(job_id)
        if rec.state == "failed":
            raise ServiceRejected(
                "failed", rec.error or "job failed", status=500
            )
        if rec.state != "done" or rec.result is None:
            raise ServiceRejected(
                "not-done",
                f"job {job_id!r} is {rec.state}; no result yet",
                status=409,
            )
        return result_to_wire(rec.result)

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------

    async def cancel(self, job_id: str, client: str = "anon") -> Dict[str, Any]:
        """Detach one client from a job.

        The solve is told to stop (between slices/shards/refinement
        rounds — the :data:`~repro.cbs.orchestrator.CancelFn` contract)
        only when no interested client remains; a job other clients
        share keeps running.  Already-settled jobs are a no-op.
        """
        rec = self._record(job_id)
        rec.clients.discard(client)
        stopping = False
        if rec.state in ("queued", "running") and not rec.clients:
            # _run polls the event at its semaphore turn (queued) and
            # compute_iter polls it between slices (running).
            rec.cancel_event.set()
            stopping = True
        return {
            "protocol_version": PROTOCOL_VERSION,
            "job_id": job_id,
            "state": rec.state,
            "detached": client,
            "stopping": stopping,
        }

    # ------------------------------------------------------------------
    # metrics / lifecycle
    # ------------------------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        """Service counters plus the store's merged
        :class:`repro.io.CacheStats`."""
        out: Dict[str, Any] = {
            "protocol_version": PROTOCOL_VERSION,
            "active": len(self._active),
            "jobs": len(self._jobs),
        }
        out.update(self.metrics_counters)
        out["store"] = self.store.stats().as_dict()
        return out

    async def aclose(self) -> None:
        """Stop every active job and release the solver threads."""
        for job_id in list(self._active):
            rec = self._jobs[job_id]
            rec.cancel_event.set()
        tasks = [
            rec.task
            for rec in self._jobs.values()
            if rec.task is not None and not rec.task.done()
        ]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._executor.shutdown(wait=True)
