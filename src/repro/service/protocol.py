"""The service wire protocol: JSON encodings and structured rejects.

Everything the HTTP front end ships is defined here, so the service,
the tests, and any client agree on one schema:

* :func:`slice_to_wire` / :func:`slice_from_wire` — one
  :class:`repro.cbs.EnergySlice` or
  :class:`repro.transport.TransportSlice` as a pure-JSON dict
  (complex numbers as ``[re, im]`` pairs, ``inf`` as ``null``);
* :func:`result_to_wire` / :func:`result_from_wire` — a whole
  schema-versioned :class:`repro.cbs.CBSResult` /
  :class:`repro.transport.TransportResult` including its provenance
  block, so a client can rebuild the exact result object and hand it
  to :func:`repro.api.save_result`;
* :class:`ServiceRejected` + :func:`error_payload` — the structured
  reject every refusal path uses (admission backpressure carries
  ``retry_after``; quota, validation, and routing errors carry a
  machine-readable ``code``).

The protocol is versioned (:data:`PROTOCOL_VERSION`): every response
envelope carries it, and :func:`result_from_wire` rejects payloads from
a different protocol or result schema instead of guessing.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.cbs.classify import CBSMode, ModeType
from repro.cbs.scan import CBS_RESULT_SCHEMA_VERSION, CBSResult, EnergySlice
from repro.transport.scan import (
    TRANSPORT_RESULT_SCHEMA_VERSION,
    TransportResult,
    TransportSlice,
)

#: Bump when the wire layout changes incompatibly; responses carry it
#: and :func:`result_from_wire` rejects foreign versions.
PROTOCOL_VERSION = 1

#: The job lifecycle states a :class:`repro.service.JobService` reports.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


class ServiceRejected(Exception):
    """A structured service refusal (never a crash).

    Parameters
    ----------
    code:
        Machine-readable reject code (``"busy"``, ``"quota"``,
        ``"invalid-job"``, ``"unknown-job"``, ``"not-done"``,
        ``"failed"``).
    message:
        Human-readable explanation.
    retry_after:
        Seconds after which a retry may succeed (admission
        backpressure); ``None`` when retrying won't help by waiting.
    status:
        The HTTP status the front end maps this reject to.
    """

    def __init__(
        self,
        code: str,
        message: str,
        *,
        retry_after: Optional[float] = None,
        status: int = 400,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.retry_after = retry_after
        self.status = status

    def payload(self) -> Dict[str, Any]:
        return error_payload(
            self.code, self.message, retry_after=self.retry_after
        )


def error_payload(
    code: str, message: str, *, retry_after: Optional[float] = None
) -> Dict[str, Any]:
    """The one reject envelope every refusal path ships."""
    err: Dict[str, Any] = {"code": code, "message": message}
    if retry_after is not None:
        err["retry_after"] = float(retry_after)
    return {"protocol_version": PROTOCOL_VERSION, "error": err}


def encode_line(obj: Dict[str, Any]) -> bytes:
    """One NDJSON line (the streaming endpoint's unit)."""
    return (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")


# ---------------------------------------------------------------------------
# scalar helpers
# ---------------------------------------------------------------------------


def _c2w(z: complex) -> List[float]:
    return [float(z.real), float(z.imag)]


def _w2c(v) -> complex:
    return complex(float(v[0]), float(v[1]))


def _f2w(x: float) -> Optional[float]:
    """JSON-safe float: ``inf`` → ``None`` (strict-JSON friendly)."""
    x = float(x)
    return None if math.isinf(x) else x


def _w2f(v) -> float:
    return math.inf if v is None else float(v)


def _matrix_to_wire(m: np.ndarray) -> Dict[str, Any]:
    a = np.asarray(m, dtype=np.complex128)
    return {
        "shape": list(a.shape),
        "re": a.real.ravel().tolist(),
        "im": a.imag.ravel().tolist(),
    }


def _matrix_from_wire(d) -> np.ndarray:
    shape = tuple(int(s) for s in d["shape"])
    re = np.asarray(d["re"], dtype=np.float64).reshape(shape)
    im = np.asarray(d["im"], dtype=np.float64).reshape(shape)
    return re + 1j * im


def _kpar_to_wire(kp):
    """Scalar k∥ as a float, vector k∥ as a list, absent as ``null``."""
    if kp is None:
        return None
    if np.ndim(kp) == 0:
        return float(kp)
    return [float(x) for x in kp]


def _kpar_from_wire(v):
    if v is None:
        return None
    if isinstance(v, (list, tuple)):
        return tuple(float(x) for x in v)
    return float(v)


# ---------------------------------------------------------------------------
# slices
# ---------------------------------------------------------------------------


def slice_to_wire(
    sl: Union[EnergySlice, TransportSlice]
) -> Dict[str, Any]:
    """One slice as a pure-JSON dict (round-trips via
    :func:`slice_from_wire`).

    Parameters
    ----------
    sl : EnergySlice or TransportSlice
        The slice to encode; the returned dict's ``"kind"`` key
        (``"cbs"`` / ``"transport"``) records which family it was.

    Returns
    -------
    dict
        JSON-safe payload: complex values as ``[re, im]`` pairs,
        infinite decay lengths as ``null``.
    """
    if isinstance(sl, TransportSlice):
        return {
            "kind": "transport",
            "energy": float(sl.energy),
            "transmission": float(sl.transmission),
            "sigma_l": _matrix_to_wire(sl.sigma_l),
            "sigma_r": _matrix_to_wire(sl.sigma_r),
            "n_channels": int(sl.n_channels),
            "total_iterations": int(sl.total_iterations),
            "solve_seconds": float(sl.solve_seconds),
            "k_par": _kpar_to_wire(sl.k_par),
            "k_weight": float(sl.k_weight),
        }
    from repro.maps.surrogate import MapPixel

    wire: Dict[str, Any] = {
        "kind": "cbs",
        "energy": float(sl.energy),
        "total_iterations": int(sl.total_iterations),
        "solve_seconds": float(sl.solve_seconds),
        "k_par": _kpar_to_wire(sl.k_par),
    }
    if isinstance(sl, MapPixel):
        # Map pixels add the surrogate annotations; plain CBS slices
        # keep the historical layout byte-for-byte.
        wire["solved"] = bool(sl.solved)
        wire["error_estimate"] = float(sl.error_estimate)
    wire["modes"] = [
            {
                "lam": _c2w(m.lam),
                "k": _c2w(m.k),
                "mode_type": m.mode_type.value,
                "decay_length": _f2w(m.decay_length),
                "residual": float(m.residual),
            }
            for m in sl.modes
        ]
    return wire


def slice_from_wire(d: Dict[str, Any]) -> Union[EnergySlice, TransportSlice]:
    """Inverse of :func:`slice_to_wire`.

    Parameters
    ----------
    d : dict
        A wire dict whose ``"kind"`` is ``"cbs"`` or ``"transport"``.

    Returns
    -------
    EnergySlice or TransportSlice

    Raises
    ------
    ServiceRejected
        For an unknown ``kind`` (code ``"invalid-payload"``).
    """
    kind = d.get("kind")
    if kind == "transport":
        return TransportSlice(
            energy=float(d["energy"]),
            transmission=float(d["transmission"]),
            sigma_l=_matrix_from_wire(d["sigma_l"]),
            sigma_r=_matrix_from_wire(d["sigma_r"]),
            n_channels=int(d["n_channels"]),
            total_iterations=int(d["total_iterations"]),
            solve_seconds=float(d["solve_seconds"]),
            k_par=_kpar_from_wire(d["k_par"]),
            k_weight=float(d["k_weight"]),
        )
    if kind == "cbs":
        energy = float(d["energy"])
        modes = [
            CBSMode(
                energy,
                _w2c(m["lam"]),
                _w2c(m["k"]),
                ModeType(m["mode_type"]),
                _w2f(m["decay_length"]),
                float(m["residual"]),
            )
            for m in d["modes"]
        ]
        common = dict(
            total_iterations=int(d["total_iterations"]),
            solve_seconds=float(d["solve_seconds"]),
            k_par=_kpar_from_wire(d["k_par"]),
        )
        if "solved" in d:
            from repro.maps.surrogate import MapPixel

            return MapPixel(
                energy,
                modes,
                solved=bool(d["solved"]),
                error_estimate=float(d.get("error_estimate", 0.0)),
                **common,
            )
        return EnergySlice(energy, modes, **common)
    raise ServiceRejected(
        "invalid-payload", f"unknown slice kind {kind!r}"
    )


# ---------------------------------------------------------------------------
# whole results
# ---------------------------------------------------------------------------


def result_to_wire(
    result: Union[CBSResult, TransportResult]
) -> Dict[str, Any]:
    """A whole result — slices, cell length, provenance — as JSON.

    The envelope carries :data:`PROTOCOL_VERSION`, the result family
    (``"cbs"``/``"transport"``), and the result's own
    ``schema_version``, all of which :func:`result_from_wire`
    validates.

    Parameters
    ----------
    result : CBSResult or TransportResult
        The result to encode.

    Returns
    -------
    dict
        JSON-safe payload round-tripping through
        :func:`result_from_wire`.
    """
    from repro.maps.surrogate import MapResult

    if isinstance(result, TransportResult):
        kind = "transport"
    elif isinstance(result, MapResult):
        kind = "map"
    else:
        kind = "cbs"
    return {
        "protocol_version": PROTOCOL_VERSION,
        "kind": kind,
        "schema_version": int(result.schema_version),
        "cell_length": float(result.cell_length),
        "provenance": result.provenance,
        "slices": [slice_to_wire(sl) for sl in result.slices],
    }


def result_from_wire(
    d: Dict[str, Any]
) -> Union[CBSResult, TransportResult]:
    """Rebuild the exact result object a wire payload describes.

    Parameters
    ----------
    d : dict
        A :func:`result_to_wire` payload.

    Returns
    -------
    CBSResult or TransportResult
        Ready for :func:`repro.api.save_result`.

    Raises
    ------
    ServiceRejected
        On a foreign protocol version, an unknown result kind, or a
        result schema version this build does not read.
    """
    version = d.get("protocol_version")
    if version != PROTOCOL_VERSION:
        raise ServiceRejected(
            "invalid-payload",
            f"unsupported protocol_version {version!r}; this build "
            f"speaks version {PROTOCOL_VERSION}",
        )
    kind = d.get("kind")
    if kind == "cbs":
        expected = CBS_RESULT_SCHEMA_VERSION
        cls: Any = CBSResult
    elif kind == "map":
        from repro.maps.surrogate import MapResult

        expected = CBS_RESULT_SCHEMA_VERSION
        cls = MapResult
    elif kind == "transport":
        expected = TRANSPORT_RESULT_SCHEMA_VERSION
        cls = TransportResult
    else:
        raise ServiceRejected(
            "invalid-payload", f"unknown result kind {kind!r}"
        )
    schema = d.get("schema_version")
    if schema != expected:
        raise ServiceRejected(
            "invalid-payload",
            f"unsupported {kind} result schema_version {schema!r}; "
            f"this build reads version {expected}",
        )
    slices = [slice_from_wire(s) for s in d["slices"]]
    return cls(
        slices,
        float(d["cell_length"]),
        schema_version=int(schema),
        provenance=dict(d.get("provenance") or {}),
    )
