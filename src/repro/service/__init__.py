"""repro.service — CBS-as-a-service over :class:`repro.api.CBSJob`.

The library ends at :func:`repro.api.compute`; this package is the
subsystem that multiplexes many clients onto it:

* :class:`JobService` — an asyncio job service with
  ``submit/status/stream/result/cancel``.  Submissions validate through
  :meth:`repro.api.CBSJob.from_dict`, identical in-flight jobs dedup by
  :meth:`~repro.api.CBSJob.job_hash` (N concurrent submits attach N
  subscribers to ONE running computation), and completed slice streams
  fan out in energy order to every subscriber.
* :class:`ResultStore` — a concurrency-safe, size-bounded, multi-tenant
  result store grown from :class:`repro.io.slice_cache.SliceCache`:
  namespaced by ``cache_context``, LRU-evicted by byte budget, with a
  :class:`repro.io.CacheStats` metrics surface and pinned (never
  evicted) active readers.
* an execution bridge that runs :func:`repro.api.compute_iter` on a
  worker thread via ``run_in_executor`` — jobs declaring
  ``mode="pool"`` ride the shared
  :class:`repro.parallel.pool.PersistentPool`, kept warm for the
  server's lifetime — honoring :data:`repro.api.CancelFn` so a client
  disconnect stops the (non-shared) solve between slices.
* admission control — a bounded job queue with backpressure
  (reject-with-``retry_after`` when full) and per-client quotas.
* a thin stdlib JSON-over-HTTP front end (:func:`serve`,
  :class:`ServiceServer`) plus a ``python -m repro.service``
  entrypoint; :mod:`repro.service.protocol` defines the
  schema-versioned wire encoding.

Start a server::

    python -m repro.service --port 8750 --store /tmp/cbs-store

and talk to it with nothing but the standard library — see
``examples/service_client.py`` and :doc:`the service guide </service>`.
"""

from repro.service.protocol import (
    PROTOCOL_VERSION,
    ServiceRejected,
    result_from_wire,
    result_to_wire,
    slice_from_wire,
    slice_to_wire,
)
from repro.service.service import JobService, JobTicket
from repro.service.store import ResultStore
from repro.service.http import ServiceServer, serve

__all__ = [
    "PROTOCOL_VERSION",
    "JobService",
    "JobTicket",
    "ResultStore",
    "ServiceRejected",
    "ServiceServer",
    "result_from_wire",
    "result_to_wire",
    "serve",
    "slice_from_wire",
    "slice_to_wire",
]
