"""The multi-tenant, size-bounded service result store.

:class:`ResultStore` grows :class:`repro.io.slice_cache.SliceCache`
from a single-context directory cache into the store a long-lived
service needs:

* **multi-tenant** — one store root holds many *namespaces*, one per
  :meth:`repro.api.CBSJob.cache_context` (the physics-only identity),
  so jobs that share physics share entries and jobs that don't can
  never collide;
* **concurrency-safe** — all store bookkeeping is behind one lock, and
  the on-disk format inherits the ``SliceCache`` atomicity contract
  (``mkstemp`` + ``os.replace``; a torn write is a miss), so multiple
  processes may hammer one root;
* **size-bounded** — an optional byte budget with LRU eviction:
  every read-hit refreshes its entry's recency (``os.utime``), and an
  over-budget put evicts least-recently-hit entries first.  Entries
  with an **active reader** (:meth:`reading`) are pinned and never
  evicted mid-read;
* **observable** — :meth:`stats` merges every namespace's
  :class:`repro.io.CacheStats` with the store's own eviction/byte
  counters (the service metrics endpoint reports it);
* **manifests** — a completed job's slice set is recorded under its
  ``job_hash`` (:meth:`put_manifest`), so an identical resubmission is
  served entirely from the store — and falls back to solving the
  moment any constituent entry has been evicted.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Tuple

from repro.io.slice_cache import CacheStats, SliceCache

__all__ = ["ResultStore"]

#: Subdirectory of the store root holding job manifests (tiny JSON
#: headers, exempt from the byte budget).
_MANIFEST_DIR = "_manifests"


def _entry_files(directory: str) -> List[Tuple[str, int, int]]:
    """``(path, mtime_ns, size)`` of every slice/transport entry in one
    namespace directory (missing/raced files skipped).  Nanosecond
    mtimes keep LRU ordering meaningful on filesystems whose float
    ``st_mtime`` rounds distinct writes to the same second."""
    out = []
    try:
        names = os.listdir(directory)
    except OSError:
        return out
    for name in names:
        if not name.endswith(".npz"):
            continue
        if not (name.startswith("slice_") or name.startswith("transport_")):
            continue
        path = os.path.join(directory, name)
        try:
            st = os.stat(path)
        except OSError:
            continue
        out.append((path, st.st_mtime_ns, st.st_size))
    return out


class ResultStore:
    """Concurrency-safe, LRU-evicting, namespaced slice store.

    Parameters
    ----------
    root : str
        Store root directory (created on demand).  Namespaces live in
        disjoint subdirectories; manifests under ``_manifests/``.
    max_bytes : int or None, optional
        Byte budget over all slice/transport entries (manifests are
        exempt — they are tiny and cheap to keep).  ``None`` disables
        eviction.  The budget is enforced after every put: entries are
        removed least-recently-hit first until the store fits, skipping
        entries pinned by an active :meth:`reading` context.

    Examples
    --------
    >>> import tempfile
    >>> from repro.cbs.scan import EnergySlice
    >>> store = ResultStore(tempfile.mkdtemp(), max_bytes=1 << 20)
    >>> _ = store.put("ctx-a", EnergySlice(0.5, []))
    >>> store.get("ctx-a", 0.5).energy
    0.5
    >>> store.get("ctx-b", 0.5) is None
    True
    """

    def __init__(self, root: str, *, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(
                f"ResultStore max_bytes must be >= 0 or None, got {max_bytes}"
            )
        self.root = os.fspath(root)
        self.max_bytes = max_bytes
        os.makedirs(os.path.join(self.root, _MANIFEST_DIR), exist_ok=True)
        self._lock = threading.RLock()
        self._caches: Dict[str, SliceCache] = {}
        self._pins: Dict[str, int] = {}
        self._evictions = 0

    # ------------------------------------------------------------------
    # namespaces
    # ------------------------------------------------------------------

    def namespace(self, context: str) -> SliceCache:
        """The :class:`SliceCache` for one ``cache_context`` (created on
        first use and reused afterwards)."""
        with self._lock:
            cache = self._caches.get(context)
            if cache is None:
                cache = SliceCache(self.root, context=context)
                self._caches[context] = cache
            return cache

    def contexts(self) -> List[str]:
        """Namespaces currently present on disk (sorted)."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return sorted(
            n
            for n in names
            if n != _MANIFEST_DIR
            and os.path.isdir(os.path.join(self.root, n))
        )

    # ------------------------------------------------------------------
    # put / get
    # ------------------------------------------------------------------

    def put(self, context: str, sl, *, transport: bool = False) -> str:
        """Persist one slice into ``context``; enforce the byte budget.

        Parameters
        ----------
        context : str
            The namespace (a :meth:`repro.api.CBSJob.cache_context`).
        sl : EnergySlice or TransportSlice
            The slice to store.
        transport : bool, optional
            Store as a transport entry (``Σ_L/Σ_R/T``) instead of a CBS
            slice.

        Returns
        -------
        str
            Path of the written entry.
        """
        with self._lock:
            cache = self.namespace(context)
            path = cache.put_transport(sl) if transport else cache.put(sl)
            self._evict_over_budget()
            return path

    def get(self, context: str, energy: float, *, transport: bool = False):
        """Fetch a slice (``None`` on miss) and refresh its LRU recency.

        Hits return with ``solve_seconds`` zeroed (the store did no
        solve work — same contract as :meth:`SliceCache.get_hit`) and
        touch the entry's mtime, which is the store's last-hit ordering.
        """
        with self._lock:
            cache = self.namespace(context)
            sl = (
                cache.get_transport_hit(energy)
                if transport
                else cache.get_hit(energy)
            )
            if sl is not None:
                path = (
                    cache.transport_path_for(energy)
                    if transport
                    else cache.path_for(energy)
                )
                try:
                    os.utime(path)
                except FileNotFoundError:
                    pass  # an evictor won the race between read and
                    # touch — the already-loaded slice is still a hit
                except OSError:
                    pass  # permissions/IO oddity — recency refresh is
                    # best-effort, never a reason to fail the read
            return sl

    @contextmanager
    def reading(self, context: str, energy: float, *, transport: bool = False):
        """Pinned read: the entry cannot be evicted while the context
        manager is open.

        Yields the slice (or ``None`` on a miss).  Pinning is
        in-process bookkeeping — eviction passes of *this* store object
        skip pinned paths — which is exactly the guarantee the service
        needs: the store that serves a streaming client is the store
        whose eviction could otherwise pull the entry out from under
        it.
        """
        cache = self.namespace(context)
        path = (
            cache.transport_path_for(energy)
            if transport
            else cache.path_for(energy)
        )
        with self._lock:
            self._pins[path] = self._pins.get(path, 0) + 1
        try:
            yield self.get(context, energy, transport=transport)
        finally:
            with self._lock:
                n = self._pins.get(path, 0) - 1
                if n <= 0:
                    self._pins.pop(path, None)
                else:
                    self._pins[path] = n

    def pinned_paths(self) -> List[str]:
        """Paths currently pinned by active readers (diagnostic)."""
        with self._lock:
            return sorted(self._pins)

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------

    def total_bytes(self) -> int:
        """Bytes currently held by slice/transport entries (scanned)."""
        return sum(
            size
            for context in self.contexts()
            for _path, _mtime, size in _entry_files(
                os.path.join(self.root, context)
            )
        )

    def _evict_over_budget(self) -> int:
        """Remove least-recently-hit unpinned entries until the store
        fits ``max_bytes``; returns the number evicted.  Caller holds
        the lock."""
        if self.max_bytes is None:
            return 0
        entries = [
            e
            for context in self.contexts()
            for e in _entry_files(os.path.join(self.root, context))
        ]
        total = sum(size for _p, _m, size in entries)
        if total <= self.max_bytes:
            return 0
        removed = 0
        # Oldest last-hit first; ties (coarse-mtime filesystems, or
        # entries written within one timestamp granule) break
        # deterministically by path instead of listdir order.
        entries.sort(key=lambda e: (e[1], e[0]))
        for path, _mtime, size in entries:
            if total <= self.max_bytes:
                break
            if self._pins.get(path):
                continue  # an active reader holds it — never evict
            try:
                os.unlink(path)
            except OSError:
                continue  # a concurrent evictor/replacer got there first
            total -= size
            removed += 1
        self._evictions += removed
        return removed

    # ------------------------------------------------------------------
    # manifests (whole-job completion records)
    # ------------------------------------------------------------------

    def _manifest_path(self, job_hash: str) -> str:
        safe = "".join(c for c in job_hash if c.isalnum() or c in "-_")
        return os.path.join(self.root, _MANIFEST_DIR, f"{safe}.json")

    def put_manifest(self, job_hash: str, manifest: Dict[str, Any]) -> str:
        """Atomically record a completed job's slice set.

        ``manifest`` is a plain-JSON dict; the service stores the
        result kind, cell length, provenance, and one
        ``(context, energy)`` pair per slice.  Returns the written
        path.
        """
        path = self._manifest_path(job_hash)
        fd, tmp = tempfile.mkstemp(
            prefix=".manifest_", suffix=".tmp",
            dir=os.path.dirname(path),
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(manifest, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def get_manifest(self, job_hash: str) -> Optional[Dict[str, Any]]:
        """Load a job's completion record (``None`` if absent or
        unreadable — same corrupt-is-a-miss contract as the cache)."""
        try:
            with open(
                self._manifest_path(job_hash), encoding="utf-8"
            ) as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------

    def stats(self) -> CacheStats:
        """The merged :class:`repro.io.CacheStats` of this store.

        Namespace hit/miss/sweep counters plus the store's eviction
        count and current byte footprint.
        """
        merged = CacheStats(
            evictions=self._evictions, bytes=self.total_bytes()
        )
        with self._lock:
            caches = list(self._caches.values())
        for cache in caches:
            merged.hits += cache.stats.hits
            merged.misses += cache.stats.misses
            merged.swept_tmps += cache.stats.swept_tmps
        return merged
