"""Physical constants and unit conversions.

The library works in Hartree atomic units internally:

* length  — Bohr radius ``a0``
* energy  — Hartree ``Ha``
* hbar = m_e = e = 1

Public entry points (builders, CBS scans) accept/report eV and Angstrom,
matching the paper's presentation (energies in eV around the Fermi level,
grid spacings in Angstrom).
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# CODATA-2018 values (truncated; more digits than we will ever resolve).
# ---------------------------------------------------------------------------

#: Hartree energy in electronvolt.
HARTREE_EV: float = 27.211386245988

#: Bohr radius in Angstrom.
BOHR_ANGSTROM: float = 0.529177210903

#: Rydberg in eV (= Ha / 2).
RYDBERG_EV: float = HARTREE_EV / 2.0

#: pi, re-exported for convenience in quadrature code.
PI: float = math.pi

#: 2*pi*i appears in every contour integral; keep a named constant.
TWO_PI: float = 2.0 * math.pi


def ev_to_hartree(e_ev: float) -> float:
    """Convert an energy from eV to Hartree."""
    return e_ev / HARTREE_EV


def hartree_to_ev(e_ha: float) -> float:
    """Convert an energy from Hartree to eV."""
    return e_ha * HARTREE_EV


def angstrom_to_bohr(x_ang: float) -> float:
    """Convert a length from Angstrom to Bohr."""
    return x_ang / BOHR_ANGSTROM


def bohr_to_angstrom(x_bohr: float) -> float:
    """Convert a length from Bohr to Angstrom."""
    return x_bohr * BOHR_ANGSTROM


#: Default grid spacing used by the paper (0.2 Angstrom), in Bohr.
DEFAULT_SPACING_BOHR: float = angstrom_to_bohr(0.2)

#: Bytes per complex128 scalar; used by the memory accounting utilities.
BYTES_COMPLEX128: int = 16

#: Bytes per float64 scalar.
BYTES_FLOAT64: int = 8

#: Bytes per int32 index (CSR indices).
BYTES_INT32: int = 4

#: Bytes per int64 index (CSR indptr).
BYTES_INT64: int = 8
