"""Model problems with known complex band structure.

These tight-binding style block triples have closed-form (or cheaply
enumerable) CBS solutions and are the validation bedrock of the test
suite: every iterative path (Sakurai-Sugiura, OBM, BiCG) is checked
against them before being trusted on the real-space DFT Hamiltonians.
"""

from repro.models.chain import MonatomicChain, DiatomicChain
from repro.models.ladder import TransverseLadder
from repro.models.random_blocks import random_bulk_triple, commuting_bulk_triple

__all__ = [
    "MonatomicChain",
    "DiatomicChain",
    "TransverseLadder",
    "random_bulk_triple",
    "commuting_bulk_triple",
]
