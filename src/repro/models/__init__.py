"""Model problems with known complex band structure.

These tight-binding style block triples have closed-form (or cheaply
enumerable) CBS solutions and are the validation bedrock of the test
suite: every iterative path (Sakurai-Sugiura, OBM, BiCG) is checked
against them before being trusted on the real-space DFT Hamiltonians.
"""

from repro.api.registry import register_system
from repro.models.chain import MonatomicChain, DiatomicChain
from repro.models.ladder import TransverseLadder
from repro.models.slab import SquareLatticeSlab
from repro.models.random_blocks import random_bulk_triple, commuting_bulk_triple

__all__ = [
    "MonatomicChain",
    "DiatomicChain",
    "TransverseLadder",
    "SquareLatticeSlab",
    "random_bulk_triple",
    "commuting_bulk_triple",
]


# -- system registry entries (resolved by repro.api SystemSpecs) ------------
#
# Each builder takes the model dataclass's constructor arguments as
# keyword params and returns its block triple, so e.g.
# ``SystemSpec("ladder", {"width": 4})`` names the same physics as
# ``TransverseLadder(width=4).blocks()``.

@register_system("chain", replace=True)
def _build_chain(**params):
    return MonatomicChain(**params).blocks()


@register_system("diatomic-chain", replace=True)
def _build_diatomic_chain(**params):
    return DiatomicChain(**params).blocks()


@register_system("ladder", replace=True)
def _build_ladder(**params):
    return TransverseLadder(**params).blocks()


@register_system("square-slab", replace=True)
def _build_square_slab(**params):
    return SquareLatticeSlab(**params).blocks()
