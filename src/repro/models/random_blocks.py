"""Random bulk-symmetric block triples for property-based testing.

The generator produces triples with the exact structural symmetry of the
real problem (``H0 = H0†``, ``H- = H+†``) but otherwise arbitrary
entries, so invariants proved on them (dual identity, spectral pairing,
SS-vs-dense agreement) are evidence about the algorithm, not about a
particular physical model.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.qep.blocks import BlockTriple
from repro.utils.rng import default_rng


def random_bulk_triple(
    n: int,
    *,
    density: float = 1.0,
    coupling_scale: float = 1.0,
    complex_valued: bool = True,
    sparse: bool = False,
    seed=None,
) -> BlockTriple:
    """A random triple with bulk symmetry.

    Parameters
    ----------
    n:
        Block dimension.
    density:
        Fraction of nonzeros in ``H+`` and in the off-diagonal of ``H0``
        (1.0 → dense).
    coupling_scale:
        Magnitude of ``H+`` relative to ``H0`` — small values emulate
        weakly coupled cells (strongly evanescent spectrum), values near
        1 give rich propagating structure.
    complex_valued:
        Use complex entries (the general Hermitian case).
    sparse:
        Return CSR blocks.
    seed:
        RNG seed (library default when ``None``).
    """
    rng = default_rng(seed)

    def rand(shape):
        a = rng.standard_normal(shape)
        if complex_valued:
            a = a + 1j * rng.standard_normal(shape)
        return a

    def sparsify(a):
        if density < 1.0:
            mask = rng.random(a.shape) < density
            a = a * mask
        return a

    g = sparsify(rand((n, n)))
    h0 = (g + g.conj().T) / 2.0
    hp = coupling_scale * sparsify(rand((n, n)))
    # Guarantee H+ is not nilpotent-degenerate: add a weak diagonal.
    hp = hp + coupling_scale * 0.1 * np.eye(n)
    hm = hp.conj().T.copy()
    if sparse:
        return BlockTriple(sp.csr_matrix(hm), sp.csr_matrix(h0), sp.csr_matrix(hp))
    return BlockTriple(hm, h0, hp)


def commuting_bulk_triple(
    n: int,
    *,
    mu_range: tuple[float, float] = (-1.5, 1.5),
    t_range: tuple[float, float] = (0.5, 1.2),
    seed=None,
):
    """A random-looking bulk triple with **fully analytic** spectrum.

    Construction: pick per-mode onsite energies ``μ_w`` and complex leg
    hoppings ``t_w``, set ``H0 = U diag(μ) U†``, ``H+ = U diag(t) U†``
    (``H- = H+†``) for a random unitary ``U``.  The QEP decouples into
    ``n`` scalar relations ``t_w λ² + (μ_w - E) λ + t̄_w = 0`` whose
    roots pair as ``(λ, 1/λ̄)`` — so every eigenvalue is known in closed
    form, unlike :func:`random_bulk_triple` whose spectrum can straddle
    the integration contour (where no contour method converges).

    Returns ``(blocks, analytic)`` with ``analytic(E) -> ndarray`` of all
    ``2n`` eigenvalues.
    """
    rng = default_rng(seed)
    mu = rng.uniform(*mu_range, size=n)
    mags = rng.uniform(*t_range, size=n)
    phases = np.exp(1j * rng.uniform(0.0, 2.0 * np.pi, size=n))
    t = mags * phases
    g = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    u, _ = np.linalg.qr(g)
    h0 = (u * mu[None, :]) @ u.conj().T
    h0 = (h0 + h0.conj().T) / 2.0
    hp = (u * t[None, :]) @ u.conj().T
    hm = hp.conj().T.copy()
    blocks = BlockTriple(hm, h0, hp)

    def analytic(energy: float) -> np.ndarray:
        out = np.empty(2 * n, dtype=np.complex128)
        for w in range(n):
            a, b, c = t[w], mu[w] - energy, np.conj(t[w])
            disc = np.sqrt(b * b - 4.0 * a * c + 0j)
            out[2 * w] = (-b + disc) / (2.0 * a)
            out[2 * w + 1] = (-b - disc) / (2.0 * a)
        return out

    return blocks, analytic
