"""π-orbital tight-binding nanotubes and bundles.

One π orbital per carbon atom, nearest-neighbor hopping ``t`` — the
textbook CNT model (and exactly what earlier CBS work was limited to;
paper §5: "calculations of the CBS for carbon nano-materials have been
limited within the empirical tight-binding approximation").  Included as

* a *fast physics reference*: (8,0) is semiconducting, (n,n) metallic,
  the gap scales like 1/R — verified by tests against zone folding;
* the light-weight path for Figure-11-style bundle physics: inter-tube
  coupling uses the standard distance-exponential π-π hopping, so
  bundling broadens bands and moves branch points without the cost of
  the real-space-grid Hamiltonian;
* a source of realistic mid-sized QEP blocks for solver tests.

Energies are in units of ``|t|`` (≈ 2.7 eV for carbon).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.constants import angstrom_to_bohr
from repro.dft.builders import (
    CC_BOND_ANGSTROM,
    bundle7,
    crystalline_bundle,
    nanotube,
)
from repro.dft.structure import CrystalStructure
from repro.errors import ConfigurationError
from repro.qep.blocks import BlockTriple

#: Nearest-neighbor window around the C-C bond length (Bohr).
_NN_TOL = 0.15

#: Default onsite shifts for substitutional dopants, in units of |t|.
DEFAULT_ONSITES: Dict[str, float] = {"C": 0.0, "B": +0.8, "N": -0.8}

#: Inter-tube π-π hopping:  t_pp(d) = -gamma * exp(-(d - d0) / delta).
INTER_GAMMA = 0.36          # |t| units (≈ 1 eV for carbon)
INTER_D0_ANGSTROM = 3.34    # graphite interlayer distance
INTER_DELTA_ANGSTROM = 0.45
INTER_CUTOFF_ANGSTROM = 5.0


@dataclass(frozen=True)
class TBModel:
    """Tight-binding parameters."""

    hopping: float = -1.0
    onsites: Tuple[Tuple[str, float], ...] = tuple(DEFAULT_ONSITES.items())
    inter_gamma: float = INTER_GAMMA
    inter_d0: float = angstrom_to_bohr(INTER_D0_ANGSTROM)
    inter_delta: float = angstrom_to_bohr(INTER_DELTA_ANGSTROM)
    inter_cutoff: float = angstrom_to_bohr(INTER_CUTOFF_ANGSTROM)

    def onsite_of(self, symbol: str) -> float:
        for s, e in self.onsites:
            if s == symbol:
                return e
        raise ConfigurationError(f"no TB onsite for species {symbol!r}")


def _pair_hoppings(
    pos_i: np.ndarray,
    pos_j: np.ndarray,
    tube_i: np.ndarray,
    tube_j: np.ndarray,
    cell_xy: Tuple[float, float],
    model: TBModel,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Hopping matrix entries between two position sets (min-image x, y).

    Returns COO ``(rows, cols, vals)``.  Nearest-neighbor hops apply only
    within a tube; the exponential π-π term only *between* tubes.
    """
    a_cc = angstrom_to_bohr(CC_BOND_ANGSTROM)
    lx, ly = cell_xy
    d = pos_j[None, :, :] - pos_i[:, None, :]
    d[..., 0] -= lx * np.round(d[..., 0] / lx)
    d[..., 1] -= ly * np.round(d[..., 1] / ly)
    dist = np.sqrt((d**2).sum(axis=-1))
    same_tube = tube_i[:, None] == tube_j[None, :]

    rows_list: List[np.ndarray] = []
    cols_list: List[np.ndarray] = []
    vals_list: List[np.ndarray] = []

    nn = same_tube & (np.abs(dist - a_cc) < _NN_TOL)
    r, c = np.nonzero(nn)
    rows_list.append(r)
    cols_list.append(c)
    vals_list.append(np.full(r.size, model.hopping))

    if model.inter_gamma != 0.0:
        inter = (~same_tube) & (dist < model.inter_cutoff) & (dist > 1e-6)
        r, c = np.nonzero(inter)
        if r.size:
            t = -model.inter_gamma * np.exp(
                -(dist[inter] - model.inter_d0) / model.inter_delta
            )
            rows_list.append(r)
            cols_list.append(c)
            vals_list.append(t)

    return (
        np.concatenate(rows_list),
        np.concatenate(cols_list),
        np.concatenate(vals_list),
    )


def tb_blocks(
    structure: CrystalStructure,
    tube_index: Optional[Sequence[int]] = None,
    model: TBModel | None = None,
) -> BlockTriple:
    """Block triple of the π-TB Hamiltonian of ``structure``.

    Parameters
    ----------
    structure:
        Atom positions + cell (one orbital per atom; any of C/B/N).
    tube_index:
        Tube id per atom (inter-tube hops use the π-π law).  Defaults to
        all atoms on one tube.
    model:
        TB parameters.
    """
    model = model or TBModel()
    pos = structure.positions()
    na = structure.natoms
    tube = (
        np.zeros(na, dtype=np.int64)
        if tube_index is None
        else np.asarray(tube_index, dtype=np.int64)
    )
    if tube.shape != (na,):
        raise ConfigurationError("tube_index must have one entry per atom")
    lx, ly, lz = structure.cell

    # In-cell couplings (z displacement 0) → H0.
    r0, c0, v0 = _pair_hoppings(pos, pos, tube, tube, (lx, ly), model)
    keep = r0 != c0  # onsites handled separately
    h0 = sp.coo_matrix((v0[keep], (r0[keep], c0[keep])), shape=(na, na))
    onsite = np.array(
        [model.onsite_of(a.symbol) for a in structure.atoms], dtype=np.float64
    )
    h0 = (h0 + sp.diags(onsite)).tocsr()
    # Symmetrize guard: pair search is symmetric by construction; enforce
    # exact Hermiticity against rounding in the distance filter.
    h0 = ((h0 + h0.T) / 2.0).tocsr()

    # Cross-boundary couplings: atoms here ↔ atoms shifted by +Lz → H+.
    pos_up = pos + np.array([0.0, 0.0, lz])
    rp, cp, vp = _pair_hoppings(pos, pos_up, tube, tube, (lx, ly), model)
    hp = sp.coo_matrix((vp, (rp, cp)), shape=(na, na)).tocsr()
    hm = hp.T.conj().tocsr()
    return BlockTriple(hm, h0, hp, cell_length=lz)


# ---------------------------------------------------------------------------
# ready-made systems
# ---------------------------------------------------------------------------

@dataclass
class TightBindingCNT:
    """π-TB single (n, m) nanotube."""

    n: int = 8
    m: int = 0
    model: TBModel = field(default_factory=TBModel)

    def structure(self) -> CrystalStructure:
        return nanotube(self.n, self.m)

    def blocks(self) -> BlockTriple:
        return tb_blocks(self.structure(), model=self.model)

    def zone_folding_gap(self) -> float:
        """Zone-folding band gap in |t| units (zigzag tubes).

        ``(n, 0)`` with ``n % 3 != 0`` is semiconducting with
        ``E_g ≈ 2|t| a_cc / R`` to leading order; metallic otherwise.
        Used as the physics sanity anchor in tests.
        """
        if self.m == self.n:
            return 0.0  # armchair: always metallic
        if self.m != 0:
            raise ConfigurationError("gap formula implemented for (n,0)/(n,n)")
        if self.n % 3 == 0:
            return 0.0
        a_cc = angstrom_to_bohr(CC_BOND_ANGSTROM)
        from repro.dft.builders import tube_radius

        return 2.0 * abs(self.model.hopping) * a_cc / (2.0 * tube_radius(self.n, 0))


def tb_bundle7(n: int = 8, m: int = 0,
               model: TBModel | None = None) -> tuple[BlockTriple, CrystalStructure]:
    """π-TB blocks of the 7-tube bundle (paper Fig. 11(b), light path)."""
    s = bundle7(n, m)
    per_tube = s.natoms // 7
    tube = np.repeat(np.arange(7), per_tube)
    return tb_blocks(s, tube, model or TBModel()), s


def tb_crystalline_bundle(n: int = 8, m: int = 0,
                          model: TBModel | None = None) -> tuple[BlockTriple, CrystalStructure]:
    """π-TB blocks of the crystalline bundle (paper Fig. 11(c), light path)."""
    s = crystalline_bundle(n, m)
    per_tube = s.natoms // 2
    tube = np.repeat(np.arange(2), per_tube)
    return tb_blocks(s, tube, model or TBModel()), s
