"""2D square-lattice slab: the minimal k∥-resolved lead model.

A slab of a square lattice, infinite and **periodic along x** (the
transverse direction, carrying a Bloch momentum ``k∥``), ``W`` sites
wide along y (open boundary), and stacked along z (the transport
direction).  At fixed transverse momentum the transverse direction
integrates out into a Bloch phase, so one principal layer is the
``W × W`` rung matrix

.. math::
    H_0(k_∥) = \\bigl(ε + 2 t_x \\cos k_∥\\bigr) I + t_y\\,\\mathrm{tridiag},
    \\qquad H_± = t_z I ,

exactly the structure of a 3D/2D crystal lead sliced at one k∥ — the
setting in which the paper's Al(100) complex bands and the k∥-summed
Landauer transmission (Iwase et al., arXiv:1709.09324) are defined —
at a fraction of the cost.  Diagonalizing the layer matrix decouples
the QEP into ``W`` chain relations

.. math::  E = μ_w(k_∥) + t_z (λ + λ^{-1}),
    \\qquad μ_w(k_∥) = ε + 2 t_x \\cos k_∥ + 2 t_y \\cos\\frac{wπ}{W+1},

so the full k∥-resolved CBS is known in closed form: this model pins
*counts and values* of every (E, k∥) grid point in the tests.

``k_par`` is the dimensionless transverse Bloch phase ``k_∥ a_x``
(radians, one transverse period ↔ ``2π``) — the convention shared by
every ``k_par``-aware builder in the registry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.errors import ConfigurationError
from repro.qep.blocks import BlockTriple


@dataclass(frozen=True)
class SquareLatticeSlab:
    """Square-lattice slab lead at fixed transverse momentum ``k∥``.

    Parameters
    ----------
    width:
        Slab width ``W`` (sites along the confined y direction;
        orbitals per principal layer).
    hopping_x:
        Hopping along the periodic transverse direction (``t_x``;
        enters only through ``2 t_x cos k∥`` on the layer diagonal).
    hopping_y:
        Hopping across the confined width direction (``t_y``).
    hopping_z:
        Hopping along the stacking/transport direction (``t_z``,
        enters ``H±``).
    onsite:
        Uniform onsite energy ``ε``.
    k_par:
        Transverse Bloch phase ``k_∥ a_x`` in radians (``0`` is the
        transverse zone center Γ̄).
    cell_length:
        Stacking period ``a`` along z.
    """

    width: int = 1
    hopping_x: float = -1.0
    hopping_y: float = -0.5
    hopping_z: float = -1.0
    onsite: float = 0.0
    k_par: float = 0.0
    cell_length: float = 1.0

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ConfigurationError(f"width must be >= 1, got {self.width}")
        if self.hopping_z == 0.0:
            raise ConfigurationError("hopping_z must be nonzero")
        if not math.isfinite(self.k_par):
            raise ConfigurationError(f"k_par must be finite, got {self.k_par}")
        if self.cell_length <= 0:
            raise ConfigurationError(
                f"cell_length must be positive, got {self.cell_length}"
            )

    # -- the principal layer ------------------------------------------------

    def layer_matrix(self) -> np.ndarray:
        """The ``W × W`` layer matrix ``H0(k∥)`` (real symmetric — the
        transverse phase enters only through ``cos k∥``)."""
        w = self.width
        diag = self.onsite + 2.0 * self.hopping_x * math.cos(self.k_par)
        h0 = np.zeros((w, w), dtype=np.float64)
        np.fill_diagonal(h0, diag)
        for i in range(w - 1):
            h0[i, i + 1] = h0[i + 1, i] = self.hopping_y
        return h0

    def transverse_modes(self) -> np.ndarray:
        """Layer eigenvalues ``μ_w(k∥)``, ascending."""
        return np.linalg.eigvalsh(self.layer_matrix())

    def blocks(self, sparse: bool = True) -> BlockTriple:
        h0 = self.layer_matrix()
        hp = self.hopping_z * np.eye(self.width)
        hm = hp.T.copy()
        if sparse:
            return BlockTriple(
                sp.csr_matrix(hm), sp.csr_matrix(h0), sp.csr_matrix(hp),
                self.cell_length,
            )
        return BlockTriple(hm, h0, hp, self.cell_length)

    # -- analytic reference -------------------------------------------------

    def analytic_lambdas(self, energy: float) -> np.ndarray:
        """All ``2W`` CBS factors at ``(energy, k∥)`` (union over the
        decoupled width modes)."""
        tz = self.hopping_z
        out = []
        for mu in self.transverse_modes():
            x = complex(energy - mu) / (2.0 * tz)
            root = np.sqrt(x * x - 1.0)
            out.extend([x + root, x - root])
        return np.asarray(out, dtype=np.complex128)

    def count_in_annulus(self, energy: float, rmin: float, rmax: float) -> int:
        """Exact number of CBS factors with ``rmin < |λ| < rmax``."""
        mags = np.abs(self.analytic_lambdas(energy))
        return int(np.count_nonzero((mags > rmin) & (mags < rmax)))

    def propagating_count(self, energy: float, tol: float = 1e-9) -> int:
        """Number of propagating modes (``|λ| = 1``) at ``(energy, k∥)``."""
        mags = np.abs(self.analytic_lambdas(energy))
        return int(np.count_nonzero(np.abs(mags - 1.0) <= tol))

    def dispersion(
        self, kz: np.ndarray, mode: Optional[int] = None
    ) -> np.ndarray:
        """Band energies ``E_w(kz; k∥) = μ_w(k∥) + 2 t_z cos(kz a)``.

        Returns shape ``(W, len(kz))``, or one band when ``mode`` is
        given.
        """
        kz = np.atleast_1d(np.asarray(kz, dtype=np.float64))
        mus = self.transverse_modes()
        bands = mus[:, None] + 2.0 * self.hopping_z * np.cos(
            kz[None, :] * self.cell_length
        )
        return bands[mode] if mode is not None else bands
