"""One-dimensional tight-binding chains with closed-form CBS.

For the monatomic chain (one orbital per cell, onsite ``ε``, hopping
``t``) the Bloch relation is

.. math::  E = ε + t λ + t λ^{-1}
           \\quad\\Longleftrightarrow\\quad
           λ^2 - \\frac{E - ε}{t} λ + 1 = 0 ,

so at every energy there are exactly two CBS solutions
``λ_± = x ± sqrt(x² - 1)`` with ``x = (E - ε) / (2t)``, satisfying
``λ_+ λ_- = 1``: inside the band (|x| ≤ 1) they are a propagating pair
on the unit circle; outside they are a growing/decaying evanescent pair.
This is the textbook picture of Figure 1 of the paper, and the exact
reference used throughout the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import ConfigurationError
from repro.qep.blocks import BlockTriple


@dataclass(frozen=True)
class MonatomicChain:
    """Nearest-neighbor chain, optionally folded into an ``ncell``-site cell.

    Parameters
    ----------
    onsite:
        Site energy ``ε``.
    hopping:
        Hopping ``t`` (real, nonzero).
    ncell:
        Sites per unit cell.  Folding a primitive chain into a larger
        cell leaves the physics unchanged but makes the QEP nontrivial
        (N×N blocks with a single corner coupling) — the same structure
        as the real-space grid problem along z.
    cell_length:
        Physical length of the *folded* cell (default ``ncell`` so the
        primitive spacing is 1).
    """

    onsite: float = 0.0
    hopping: float = -1.0
    ncell: int = 1
    cell_length: float | None = None

    def __post_init__(self) -> None:
        if self.hopping == 0.0:
            raise ConfigurationError("hopping must be nonzero")
        if self.ncell < 1:
            raise ConfigurationError(f"ncell must be >= 1, got {self.ncell}")

    @property
    def a(self) -> float:
        return float(self.cell_length if self.cell_length is not None else self.ncell)

    def blocks(self, sparse: bool = True) -> BlockTriple:
        """The folded block triple ``(H-, H0, H+)``."""
        n, t, e = self.ncell, self.hopping, self.onsite
        h0 = sp.diags(
            [np.full(n - 1, t), np.full(n, e), np.full(n - 1, t)],
            offsets=[-1, 0, 1], format="csr", dtype=np.float64,
        )
        hp = sp.csr_matrix(
            (np.array([t]), (np.array([n - 1]), np.array([0]))),
            shape=(n, n), dtype=np.float64,
        )
        hm = hp.conj().T.tocsr()
        if not sparse:
            return BlockTriple(hm.toarray(), h0.toarray(), hp.toarray(), self.a)
        return BlockTriple(hm, h0, hp, self.a)

    # -- analytic reference ---------------------------------------------------

    def analytic_lambdas_primitive(self, energy: float) -> np.ndarray:
        """The two primitive-cell CBS factors ``λ_±`` at ``energy``."""
        x = (energy - self.onsite) / (2.0 * self.hopping)
        x = complex(x)
        root = np.sqrt(x * x - 1.0)
        return np.array([x + root, x - root], dtype=np.complex128)

    def analytic_lambdas(self, energy: float) -> np.ndarray:
        """CBS factors of the **folded** cell at ``energy``.

        Folding an ``ncell``-site cell maps each primitive factor μ to the
        folded factor ``λ = μ^ncell``; both primitive solutions give the
        same pair because ``μ_+ μ_- = 1``.
        """
        mu = self.analytic_lambdas_primitive(energy)
        return mu ** self.ncell

    def band_edges(self) -> tuple[float, float]:
        """Bottom and top of the single cosine band."""
        lo = self.onsite - 2.0 * abs(self.hopping)
        hi = self.onsite + 2.0 * abs(self.hopping)
        return lo, hi

    def dispersion(self, k: np.ndarray) -> np.ndarray:
        """Conventional band ``E(k) = ε + 2 t cos(k a0)`` (primitive)."""
        a0 = self.a / self.ncell
        return self.onsite + 2.0 * self.hopping * np.cos(np.asarray(k) * a0)


@dataclass(frozen=True)
class DiatomicChain:
    """Two-site (SSH-like) chain: alternating hoppings ``t1`` (intra-cell)
    and ``t2`` (inter-cell), onsites ``eps_a/eps_b``.

    Opens a gap of ``2|t1 - t2|`` (for equal onsites) around the band
    center — the minimal model with a **band gap**, i.e. with an energy
    window where *all* CBS solutions are evanescent, including the branch
    point where the two decaying solutions coalesce (paper Fig. 11(a)'s
    red dot).  Analytic CBS from the 2×2 transfer relation:

    ``t1 t2 (λ + 1/λ) = (E - ε_a)(E - ε_b) - t1² - t2²``.
    """

    eps_a: float = 0.0
    eps_b: float = 0.0
    t1: float = -1.0
    t2: float = -0.6
    cell_length: float = 1.0

    def __post_init__(self) -> None:
        if self.t1 == 0.0 or self.t2 == 0.0:
            raise ConfigurationError("hoppings must be nonzero")
        if self.cell_length <= 0:
            raise ConfigurationError("cell_length must be positive")

    def blocks(self, sparse: bool = True) -> BlockTriple:
        h0 = np.array([[self.eps_a, self.t1], [self.t1, self.eps_b]])
        hp = np.array([[0.0, 0.0], [self.t2, 0.0]])
        hm = hp.T.copy()
        if sparse:
            return BlockTriple(
                sp.csr_matrix(hm), sp.csr_matrix(h0), sp.csr_matrix(hp),
                self.cell_length,
            )
        return BlockTriple(hm, h0, hp, self.cell_length)

    def analytic_lambdas(self, energy: float) -> np.ndarray:
        """The two CBS factors ``λ_±`` at ``energy`` (product = 1)."""
        rhs = (
            (energy - self.eps_a) * (energy - self.eps_b)
            - self.t1**2 - self.t2**2
        ) / (self.t1 * self.t2)
        x = complex(rhs) / 2.0
        root = np.sqrt(x * x - 1.0)
        return np.array([x + root, x - root], dtype=np.complex128)

    def gap_edges(self) -> tuple[float, float]:
        """Valence-band top and conduction-band bottom (equal onsites)."""
        if self.eps_a != self.eps_b:
            raise ConfigurationError(
                "gap_edges() implemented for equal onsites only"
            )
        center = self.eps_a
        half_gap = abs(abs(self.t1) - abs(self.t2))
        return center - half_gap, center + half_gap

    def branch_point_energy(self) -> float:
        """Energy of the mid-gap branch point (equal onsites): gap center.

        At this energy the two evanescent solutions coalesce at
        ``|λ| = |t1/t2|^{∓1}``; used to validate
        :mod:`repro.cbs.branch`.
        """
        if self.eps_a != self.eps_b:
            raise ConfigurationError(
                "branch_point_energy() implemented for equal onsites only"
            )
        return self.eps_a
