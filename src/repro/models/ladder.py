"""Transverse ladders: many decoupled cosine bands with known CBS.

A ``W``-site rung with Hermitian rung matrix ``T`` and uniform leg
hopping ``t_z`` gives ``H0 = T``, ``H± = t_z I``.  Diagonalizing
``T = U diag(μ_w) U†`` decouples the QEP into ``W`` independent chain
relations

.. math::  E = μ_w + t_z (λ + λ^{-1}) ,

so the full CBS at energy ``E`` is the union over transverse modes of
the chain pairs — exactly the structure of a real-space grid problem
(transverse modes = lateral plane waves), at a fraction of the cost.
This model pins down *counts*: the number of QEP eigenvalues in an
annulus is known analytically, which sizes the Sakurai-Sugiura subspace
in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.errors import ConfigurationError
from repro.qep.blocks import BlockTriple


@dataclass(frozen=True)
class TransverseLadder:
    """``W``-leg ladder with tridiagonal rung coupling.

    Parameters
    ----------
    width:
        Number of legs ``W`` (orbitals per cell).
    rung_hopping:
        Nearest-neighbor coupling within a rung (``t_perp``).
    leg_hopping:
        Coupling between consecutive rungs (``t_z``, enters ``H±``).
    onsite:
        Uniform onsite energy.
    periodic_rung:
        Close the rung into a ring (transverse modes become plane waves).
    k_par:
        Transverse Bloch phase (radians) twisting the periodic rung's
        wrap bond — the ``W``-site ring is then one transverse period
        of an infinite 2D lattice sampled at momentum ``k∥`` (twisted
        boundary conditions).  Requires ``periodic_rung=True`` and
        ``width > 2`` (the configurations in which the wrap bond
        exists).
    cell_length:
        Stacking period ``a``.
    """

    width: int = 4
    rung_hopping: float = -0.5
    leg_hopping: float = -1.0
    onsite: float = 0.0
    periodic_rung: bool = False
    k_par: float = 0.0
    cell_length: float = 1.0

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ConfigurationError(f"width must be >= 1, got {self.width}")
        if self.leg_hopping == 0.0:
            raise ConfigurationError("leg_hopping must be nonzero")
        if self.k_par != 0.0 and not (self.periodic_rung and self.width > 2):
            raise ConfigurationError(
                f"k_par={self.k_par} needs a periodic rung with width > 2 "
                f"(got periodic_rung={self.periodic_rung}, "
                f"width={self.width}); an open rung has no transverse "
                f"period to twist"
            )

    def rung_matrix(self) -> np.ndarray:
        """The ``W×W`` Hermitian rung matrix ``T`` (complex when the
        wrap bond carries a ``k∥`` twist)."""
        w = self.width
        dtype = np.complex128 if self.k_par != 0.0 else np.float64
        T = np.zeros((w, w), dtype=dtype)
        np.fill_diagonal(T, self.onsite)
        for i in range(w - 1):
            T[i, i + 1] = T[i + 1, i] = self.rung_hopping
        if self.periodic_rung and w > 2:
            phase = np.exp(1j * self.k_par) if self.k_par != 0.0 else 1.0
            T[w - 1, 0] = self.rung_hopping * phase
            T[0, w - 1] = np.conj(T[w - 1, 0])
        return T

    def transverse_modes(self) -> np.ndarray:
        """Eigenvalues ``μ_w`` of the rung matrix, ascending."""
        return np.linalg.eigvalsh(self.rung_matrix())

    def blocks(self, sparse: bool = True) -> BlockTriple:
        h0 = self.rung_matrix()
        hp = self.leg_hopping * np.eye(self.width)
        hm = hp.T.copy()
        if sparse:
            return BlockTriple(
                sp.csr_matrix(hm), sp.csr_matrix(h0), sp.csr_matrix(hp),
                self.cell_length,
            )
        return BlockTriple(hm, h0, hp, self.cell_length)

    # -- analytic reference ----------------------------------------------------

    def analytic_lambdas(self, energy: float) -> np.ndarray:
        """All ``2W`` CBS factors at ``energy`` (union over modes)."""
        tz = self.leg_hopping
        out = []
        for mu in self.transverse_modes():
            x = complex(energy - mu) / (2.0 * tz)
            root = np.sqrt(x * x - 1.0)
            out.extend([x + root, x - root])
        return np.asarray(out, dtype=np.complex128)

    def count_in_annulus(self, energy: float, rmin: float, rmax: float) -> int:
        """Exact number of CBS factors with ``rmin < |λ| < rmax``."""
        mags = np.abs(self.analytic_lambdas(energy))
        return int(np.count_nonzero((mags > rmin) & (mags < rmax)))

    def propagating_count(self, energy: float, tol: float = 1e-9) -> int:
        """Number of propagating modes (``|λ| = 1``) at ``energy``."""
        mags = np.abs(self.analytic_lambdas(energy))
        return int(np.count_nonzero(np.abs(mags - 1.0) <= tol))

    def dispersion(self, k: np.ndarray, mode: Optional[int] = None) -> np.ndarray:
        """Band energies ``E_w(k) = μ_w + 2 t_z cos(k a)``.

        Returns shape ``(W, len(k))``, or a single band when ``mode`` is
        given.
        """
        k = np.atleast_1d(np.asarray(k, dtype=np.float64))
        mus = self.transverse_modes()
        bands = mus[:, None] + 2.0 * self.leg_hopping * np.cos(k[None, :] * self.cell_length)
        return bands[mode] if mode is not None else bands
