"""Brute-force dense QEP baseline (timed wrapper around the linearization).

Solves the full ``2N``-dimensional companion problem with LAPACK — the
"just diagonalize everything" approach whose ``O(N^3)`` time and
``O(N^2)`` memory wall is the reason contour methods exist.  Used as the
correctness reference in tests and as a second point of comparison in
the serial benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.qep.blocks import BlockTriple
from repro.qep.linearization import solve_qep_dense
from repro.qep.pencil import QuadraticPencil
from repro.utils.memory import MemoryReport
from repro.utils.timing import PhaseTimes


@dataclass
class DenseQEPResult:
    energy: float
    eigenvalues: np.ndarray
    vectors: np.ndarray
    residuals: np.ndarray
    phase_times: PhaseTimes
    memory: MemoryReport

    @property
    def count(self) -> int:
        return int(self.eigenvalues.shape[0])


class DenseQEPBaseline:
    """Dense linearization baseline with ring filtering.

    Parameters mirror the SS solver's acceptance window so the result
    sets are directly comparable.
    """

    def __init__(
        self,
        blocks: BlockTriple,
        *,
        rmin: float = 0.5,
        rmax: float = 2.0,
        residual_tol: float = 1e-6,
    ) -> None:
        self.blocks = blocks.as_complex()
        self.rmin = rmin
        self.rmax = rmax
        self.residual_tol = residual_tol

    def solve(self, energy: float) -> DenseQEPResult:
        times = PhaseTimes()
        memory = MemoryReport()
        n = self.blocks.n
        with times.phase("solve eigenvalue problem"):
            sol = solve_qep_dense(self.blocks, energy)
            mags = np.abs(sol.eigenvalues)
            keep = (mags > self.rmin) & (mags < self.rmax)
            lam = sol.eigenvalues[keep]
            vecs = sol.vectors[:, keep]
            pencil = QuadraticPencil(self.blocks, energy)
            res = pencil.residuals(lam, vecs)
            ok = res <= self.residual_tol
            lam, vecs, res = lam[ok], vecs[:, ok], res[ok]
            order = np.argsort(np.abs(lam))
        # Companion pair + eig workspace: ~5 dense (2N)² complexes.
        memory.add("companion pencil + workspace", 5 * (2 * n) ** 2 * 16)
        return DenseQEPResult(
            float(energy), lam[order], vecs[:, order], res[order],
            times, memory,
        )
