"""Classical transfer-matrix method — the unstable strawman.

For an invertible coupling block the cell recursion

.. math::
    \\begin{bmatrix} ψ_{n+1} \\\\ ψ_n \\end{bmatrix}
    = \\underbrace{\\begin{bmatrix}
        H_+^{-1}(E - H_0) & -H_+^{-1} H_- \\\\ I & 0
      \\end{bmatrix}}_{T(E)}
    \\begin{bmatrix} ψ_n \\\\ ψ_{n-1} \\end{bmatrix}

gives the CBS as the spectrum of ``T(E)``.  The catch — well known since
Lee & Joannopoulos (1981), and the reason the paper's second approach
"diagonalizing T_{2m}(E)" needs the boundary-matching reformulation —
is that ``H_+`` is severely ill-conditioned for high-order stencils
(its W-plane block is triangular with tiny corner entries), so ``T``
mixes modes growing like ``|λ|^{N}`` and loses the physical ring
eigenvalues in rounding error for all but tiny problems.

This module exists (a) as a third baseline for small models, (b) to
*demonstrate* the conditioning failure in tests and the ablation bench.
"""

from __future__ import annotations

import warnings
from typing import Tuple

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp

from repro.errors import SingularPencilError
from repro.qep.blocks import BlockTriple

#: Condition-number threshold above which results are flagged unreliable.
CONDITION_WARNING = 1e12


def transfer_matrix(blocks: BlockTriple, energy: float) -> Tuple[np.ndarray, float]:
    """The ``2N × 2N`` transfer matrix and the condition number of ``H+``.

    Raises :class:`SingularPencilError` when ``H+`` is numerically
    singular (common: grid couplings make ``H+`` nilpotent-like); callers
    should fall back to OBM or the QEP/SS path — which is the point.
    """
    dense = blocks.as_dense().as_complex()
    n = dense.n
    hp = np.asarray(dense.hp)
    cond = float(np.linalg.cond(hp)) if n <= 2000 else np.inf
    if not np.isfinite(cond) or cond > 1e15:
        raise SingularPencilError(
            f"H+ is numerically singular (cond={cond:.2e}); the transfer "
            "matrix does not exist — use OBM or QEP/SS"
        )
    if cond > CONDITION_WARNING:
        warnings.warn(
            f"transfer matrix built from H+ with cond={cond:.2e}; "
            "eigenvalues in the ring are likely inaccurate",
            RuntimeWarning,
            stacklevel=2,
        )
    e_h0 = energy * np.eye(n, dtype=np.complex128) - np.asarray(dense.h0)
    hp_inv_eh0 = np.linalg.solve(hp, e_h0)
    hp_inv_hm = np.linalg.solve(hp, np.asarray(dense.hm))
    t = np.zeros((2 * n, 2 * n), dtype=np.complex128)
    t[:n, :n] = hp_inv_eh0
    t[:n, n:] = -hp_inv_hm
    t[n:, :n] = np.eye(n)
    return t, cond


def transfer_matrix_eigenvalues(
    blocks: BlockTriple,
    energy: float,
    *,
    rmin: float = 0.0,
    rmax: float = np.inf,
) -> np.ndarray:
    """CBS factors from the transfer-matrix spectrum, ring-filtered."""
    t, _cond = transfer_matrix(blocks, energy)
    lam = sla.eigvals(t)
    mags = np.abs(lam)
    return lam[(mags > rmin) & (mags < rmax)]
