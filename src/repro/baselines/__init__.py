"""Baseline CBS methods the paper compares against.

* :mod:`repro.baselines.obm` — the overbridging boundary-matching
  method (Fujimoto & Hirose, PRB 67, 195315 (2003)), "the best known
  algorithm of the real-space grid approach" per the paper, used as the
  Figure-4 comparison target.
* :mod:`repro.baselines.dense_qep` — brute-force dense linearization
  (``O((2N)^3)``), the correctness reference.
* :mod:`repro.baselines.transfer_matrix` — the classical transfer-matrix
  method, included to demonstrate the conditioning pathology that
  motivated OBM-style reformulations.
"""

from repro.baselines.obm import OBMSolver, OBMResult
from repro.baselines.dense_qep import DenseQEPBaseline
from repro.baselines.transfer_matrix import transfer_matrix_eigenvalues

__all__ = [
    "OBMSolver",
    "OBMResult",
    "DenseQEPBaseline",
    "transfer_matrix_eigenvalues",
]
