"""The overbridging boundary-matching (OBM) baseline.

The transfer-matrix-category method the paper measures against
(Fujimoto & Hirose 2003; refined in refs [32, 34]).  The defining costs,
quoted directly from the paper: "the computations of the first and last
``Nx × Ny × Nf`` columns of ``(E - H_{n,n})^{-1}`` and the generalized
eigenvalue problem for the ``2 × Nx × Ny × Nf`` dimensional matrices",
the latter solved with LAPACK ``ZGGEV`` (here ``scipy.linalg.eig``).

Derivation used here.  With ``B = H_{n,n+1}`` supported on the (last ``W``
planes × first ``W`` planes) block ``C`` (``W`` = stencil width ``Nf``
plus any projector overhang), Bloch's theorem turns the cell equation
into ``ψ = G (λ B + λ^{-1} B^†) ψ`` with ``G = (E - H0)^{-1}``.  Writing
``u = ψ|_{first W}``, ``w = ψ|_{last W}``, ``v = λ^{-1} w`` and the four
corner blocks ``A_XY = G[X planes, Y planes]`` gives the linear pencil

.. math::
    \\begin{bmatrix} I & -A_{FF} C^† \\\\ 0 & A_{LF} C^† \\end{bmatrix}
    \\begin{bmatrix} u \\\\ v \\end{bmatrix}
    = λ
    \\begin{bmatrix} A_{FL} C & 0 \\\\ -A_{LL} C & I \\end{bmatrix}
    \\begin{bmatrix} u \\\\ v \\end{bmatrix},

a ``2 m`` generalized eigenproblem with ``m = W × Nx × Ny`` — the same
dimension, memory profile (``O(N·m)`` dense Green's-function columns)
and ``O((2m)^3)`` dense-eig cost as the published OBM.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp

from repro.errors import ConfigurationError, SingularPencilError
from repro.grid.grid import RealSpaceGrid
from repro.qep.blocks import BlockTriple
from repro.qep.pencil import QuadraticPencil
from repro.solvers.cg import conjugate_gradient
from repro.solvers.direct import SparseLUSolver
from repro.solvers.stopping import ResidualRule
from repro.utils.memory import MemoryReport
from repro.utils.timing import PhaseTimes


@dataclass
class OBMResult:
    """Eigenpairs + accounting from one OBM solve."""

    energy: float
    eigenvalues: np.ndarray
    vectors: np.ndarray
    residuals: np.ndarray
    boundary_width: int
    reduced_dim: int
    phase_times: PhaseTimes
    memory: MemoryReport
    cg_iterations: int = 0
    raw_eigenvalues: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def count(self) -> int:
        return int(self.eigenvalues.shape[0])


class OBMSolver:
    """OBM complex-band solver for a grid block triple.

    Parameters
    ----------
    blocks:
        The unit-cell triple (sparse).
    grid:
        The grid (provides the plane layout; ``plane_size`` must divide
        the block dimension).
    invert_method:
        ``"lu"`` (sparse LU for the Green's-function columns, default) or
        ``"cg"`` (the paper's choice — plain CG on the Hermitian
        indefinite ``E - H0``, which may converge slowly mid-spectrum).
    cg_tol:
        CG relative tolerance when ``invert_method="cg"``.
    residual_tol / rmin / rmax:
        Acceptance filter on the extracted pairs (defaults match the SS
        solver's ring λ_min = 0.5 for apples-to-apples comparisons).
    """

    def __init__(
        self,
        blocks: BlockTriple,
        grid: RealSpaceGrid,
        *,
        invert_method: str = "lu",
        cg_tol: float = 1e-10,
        residual_tol: float = 1e-6,
        rmin: float = 0.5,
        rmax: float = 2.0,
    ) -> None:
        if invert_method not in ("lu", "cg"):
            raise ConfigurationError(f"unknown invert_method {invert_method!r}")
        if blocks.n != grid.npoints:
            raise ConfigurationError(
                f"blocks dimension {blocks.n} != grid points {grid.npoints}"
            )
        self.blocks = blocks.as_complex()
        self.grid = grid
        self.invert_method = invert_method
        self.cg_tol = cg_tol
        self.residual_tol = residual_tol
        self.rmin = rmin
        self.rmax = rmax

    # ------------------------------------------------------------------

    def boundary_width(self) -> int:
        """Planes spanned by the coupling block ``H+`` (≥ the stencil Nf)."""
        hp = self.blocks.hp.tocoo()
        if hp.nnz == 0:
            raise ConfigurationError("H+ is identically zero — no coupling")
        plane = self.grid.plane_size
        nz = self.grid.nz
        w_rows = nz - int(hp.row.min()) // plane
        w_cols = int(hp.col.max()) // plane + 1
        w = max(w_rows, w_cols)
        if 2 * w > nz:
            raise ConfigurationError(
                f"boundary width {w} exceeds half the cell ({nz} planes); "
                "OBM reduction needs disjoint first/last blocks"
            )
        return w

    def solve(self, energy: float) -> OBMResult:
        """All CBS eigenpairs at ``energy`` in the acceptance ring."""
        times = PhaseTimes()
        memory = MemoryReport()
        g = self.grid
        n = self.blocks.n
        w = self.boundary_width()
        m = w * g.plane_size
        first = g.first_planes(w)
        last = g.last_planes(w)

        # --- Green's-function boundary columns --------------------------------
        cg_iters = 0
        with times.phase("matrix inversion"):
            e_h0 = (
                energy * sp.identity(n, dtype=np.complex128, format="csr")
                - self.blocks.h0
            )
            rhs = np.zeros((n, 2 * m), dtype=np.complex128)
            cols_first = np.arange(first.start, first.stop)
            cols_last = np.arange(last.start, last.stop)
            rhs[cols_first, np.arange(m)] = 1.0
            rhs[cols_last, m + np.arange(m)] = 1.0
            if self.invert_method == "lu":
                lu = SparseLUSolver(e_h0)
                gcols = lu.solve(rhs)
            else:
                gcols = np.empty_like(rhs)
                rule = ResidualRule(self.cg_tol)
                for j in range(2 * m):
                    res = conjugate_gradient(e_h0, rhs[:, j], rule=rule)
                    gcols[:, j] = res.x
                    cg_iters += res.iterations
            g_first = gcols[:, :m]     # G columns over the first W planes
            g_last = gcols[:, m:]      # G columns over the last W planes
            memory.add("Green's function columns (N x 2m)", gcols)

        # --- reduced generalized eigenproblem -----------------------------------
        with times.phase("solve eigenvalue problem"):
            c_block = self.blocks.hp[last, first].toarray()
            ch = c_block.conj().T
            a_ff = g_first[first, :]
            a_fl = g_last[first, :]
            a_lf = g_first[last, :]
            a_ll = g_last[last, :]

            eye = np.eye(m, dtype=np.complex128)
            m1 = np.zeros((2 * m, 2 * m), dtype=np.complex128)
            m2 = np.zeros((2 * m, 2 * m), dtype=np.complex128)
            m1[:m, :m] = eye
            m1[:m, m:] = -(a_ff @ ch)
            m1[m:, m:] = a_lf @ ch
            m2[:m, :m] = a_fl @ c_block
            m2[m:, :m] = -(a_ll @ c_block)
            m2[m:, m:] = eye
            memory.add("reduced GEP matrices (2m x 2m)", [m1, m2])
            # LAPACK zggev workspace is ~3 extra 2m x 2m complexes.
            memory.add("ZGGEV workspace (est.)", 3 * (2 * m) ** 2 * 16)

            wvals, vr = sla.eig(m1, m2, homogeneous_eigvals=True, right=True)
            alpha, beta = wvals[0], wvals[1]
            amax = float(np.max(np.abs(alpha))) or 1.0
            bmax = float(np.max(np.abs(beta))) or 1.0
            finite = (np.abs(beta) > 1e-12 * bmax) & (np.abs(alpha) > 1e-12 * amax)
            lam_all = alpha[finite] / beta[finite]
            x = vr[:, finite]

            mags = np.abs(lam_all)
            ring = (mags > self.rmin) & (mags < self.rmax)
            lam = lam_all[ring]
            x = x[:, ring]

            # Reconstruct the full eigenvectors:
            #   ψ = λ G[:, last] C u + G[:, first] C† v .
            pencil = QuadraticPencil(self.blocks, energy)
            vecs = np.empty((n, lam.size), dtype=np.complex128)
            for i, lv in enumerate(lam):
                u = x[:m, i]
                v = x[m:, i]
                psi = lv * (g_last @ (c_block @ u)) + g_first @ (ch @ v)
                nrm = np.linalg.norm(psi)
                vecs[:, i] = psi / (nrm if nrm > 0 else 1.0)
            res = pencil.residuals(lam, vecs)
            keep = res <= self.residual_tol
            lam_k, vecs_k, res_k = lam[keep], vecs[:, keep], res[keep]
            order = np.argsort(np.abs(lam_k))

        memory.add("Hamiltonian blocks (sparse)", self.blocks.nbytes)
        return OBMResult(
            energy=float(energy),
            eigenvalues=lam_k[order],
            vectors=vecs_k[:, order],
            residuals=res_k[order],
            boundary_width=w,
            reduced_dim=2 * m,
            phase_times=times,
            memory=memory,
            cg_iterations=cg_iters,
            raw_eigenvalues=lam_all,
        )

    # ------------------------------------------------------------------

    def memory_estimate(self) -> int:
        """Predicted peak bytes without running (Figure 4(b) planning)."""
        w = self.boundary_width()
        m = w * self.grid.plane_size
        n = self.blocks.n
        return (
            n * 2 * m * 16          # Green's function columns
            + 2 * (2 * m) ** 2 * 16  # reduced pencil
            + 3 * (2 * m) ** 2 * 16  # eig workspace
            + self.blocks.nbytes
        )
