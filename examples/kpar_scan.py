#!/usr/bin/env python3
"""k∥-resolved workloads: (E, k∥) complex bands and BZ-summed transmission.

The leads of the paper's headline systems (Al(100), nanotube bundles)
are 3D/2D crystals: their complex band structure and electrode
self-energies are defined *per transverse momentum* k∥, and the
Landauer transmission is a Brillouin-zone-weighted sum over k∥.
Attaching a :class:`repro.api.KParSpec` to a job sweeps that axis:

    CBSJob(system, scan, kpar=KParSpec(grid=4))
    →  one system build per k∥, the (E, k∥) product grid through any
       execution mode, slices stamped with their momentum.

Run:  python examples/kpar_scan.py
"""

import numpy as np

from repro.api import CBSJob, ExecutionSpec, KParSpec, compute
from repro.models import SquareLatticeSlab


def kpar_resolved_complex_bands() -> None:
    """Complex bands of a square-lattice slab, column by column."""
    print("k∥-resolved complex bands (square-lattice slab, W = 2):")
    job = CBSJob(
        system={"name": "square-slab", "params": {"width": 2}},
        scan={"window": [-1.2, 0.6, 7], "n_mm": 4, "n_rh": 4, "seed": 1,
              "linear_solver": "direct"},
        ring={"n_int": 16},
        kpar=KParSpec(grid=3),
    )
    result = compute(job)
    for k in result.k_pars():
        column = result.at_kpar(k)
        slab = SquareLatticeSlab(width=2, k_par=k)
        worst = 0.0
        for sl in column.slices:
            exact = slab.analytic_lambdas(sl.energy)
            for lam in sl.lambdas():
                worst = max(worst, float(np.min(np.abs(exact - lam))))
        counts = [s.count for s in column.slices]
        print(f"  k∥ = {k:+.4f}: modes per slice {counts}, "
              f"max error vs analytic {worst:.2e}")


def bz_summed_transmission() -> None:
    """Monkhorst-Pack k∥ summation of the Landauer transmission.

    An orchestrated run shards the (E, k∥) grid over worker processes;
    ``TransportResult.total_transmissions()`` folds the columns with
    their BZ weights.  For this ideal wire the total counts the open
    channels averaged over the transverse zone.
    """
    print("\nBZ-summed transmission (ideal slab wire, 4 k∥ points):")
    job = CBSJob(
        system={"name": "square-slab", "params": {"width": 1}},
        scan={"window": [-1.5, 1.5, 7]},
        transport={"eta": 1e-6, "n_cells": 2},
        kpar=KParSpec(grid=4),
        execution=ExecutionSpec(mode="processes", workers=2),
    )
    result = compute(job)
    energies, totals = result.total_transmissions()
    for e, t in zip(energies, totals):
        bar = "#" * int(round(10 * t))
        print(f"  E = {e:+.3f}   T_total = {t:.4f}  {bar}")
    print(f"  ({len(result.k_pars())} k∥ columns, "
          f"{len(result.slices)} (E, k∥) slices, "
          f"engine: {result.provenance['engine']})")


if __name__ == "__main__":
    kpar_resolved_complex_bands()
    bz_summed_transmission()
