#!/usr/bin/env python3
"""Quickstart: complex band structure through the unified workload API.

One declarative loop for every workload:

    CBSJob (system × ring × scan × execution)  →  repro.api.compute(job)
    →  a versioned CBSResult: λ = exp(i k a) per energy, classified into
       propagating / evanescent modes, provenance-stamped

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.api import CBSJob, RingSpec, ScanSpec, SystemSpec, compute
from repro.backends import available_backends
from repro.models.chain import DiatomicChain, MonatomicChain


def single_energy_demo() -> None:
    """One energy slice of the monatomic chain, against the exact answer.

    A single-energy serial job routes straight to one Sakurai-Sugiura
    Hankel solve (`job.engine() == "solver"`).
    """
    chain = MonatomicChain(onsite=0.0, hopping=-1.0)  # band: [-2, 2]

    def chain_job(energy: float) -> CBSJob:
        return CBSJob(
            system=SystemSpec("chain", {"onsite": 0.0, "hopping": -1.0}),
            scan=ScanSpec(energies=(energy,), n_mm=2, n_rh=2, seed=1,
                          linear_solver="direct"),
            ring=RingSpec(n_int=16),
        )

    print("Monatomic chain, E inside the band (E = 0.7):")
    result = compute(chain_job(0.7))
    exact = chain.analytic_lambdas(0.7)
    for lam in result.slices[0].lambdas():
        err = np.min(np.abs(exact - lam))
        print(f"  λ = {lam:+.6f}   |λ| = {abs(lam):.6f}   error vs analytic: {err:.2e}")
    print("  → |λ| = 1: two counter-propagating Bloch waves.\n")

    print("Same chain, E above the band (E = 2.2):")
    result = compute(chain_job(2.2))
    for lam in result.slices[0].lambdas():
        print(f"  λ = {lam:+.6f}   |λ| = {abs(lam):.6f}")
    print("  → |λ| ≠ 1: a decaying/growing evanescent pair.\n")


def gap_scan_demo() -> None:
    """Scan the SSH chain through its gap: the evanescent loop + branch point.

    An energy-window job; serial execution routes it through the warm
    scan engine.  The job is fully serializable — the JSON round-trip
    below is what a remote worker or a job queue would receive.
    """
    ssh = DiatomicChain(t1=-1.0, t2=-0.6)  # gap of 0.8 centered at 0
    lo, hi = ssh.gap_edges()
    job = CBSJob(
        system=SystemSpec("diatomic-chain", {"t1": -1.0, "t2": -0.6}),
        scan=ScanSpec(window=(lo - 0.3, hi + 0.3, 13), n_mm=2, n_rh=2,
                      seed=1, linear_solver="direct"),
        ring=RingSpec(n_int=24),
    )
    job = CBSJob.from_json(job.to_json())  # declarative: survives the wire
    result = compute(job)

    print(f"SSH chain (gap [{lo:+.2f}, {hi:+.2f}]): dominant |Im k| per energy")
    print(f"  {'E':>7s}  {'modes':>5s}  {'propagating':>11s}  {'|Im k|':>8s}")
    for s, kim in zip(result.slices, result.min_imag_k()):
        kim_txt = f"{kim:8.4f}" if np.isfinite(kim) else "      --"
        print(f"  {s.energy:+7.3f}  {s.count:5d}  {len(s.propagating()):11d}  {kim_txt}")
    print("  → |Im k| rises into the gap and peaks at the branch point (E = 0).")
    print(f"  provenance: job {result.provenance['job_hash']} "
          f"ran on engine '{result.provenance['engine']}' "
          f"(repro {result.provenance['repro_version']})")


def backend_demo() -> None:
    """The same job on a different array backend.

    ``ExecutionSpec(backend=...)`` selects the arithmetic the Step-1
    hot path runs on.  ``"numpy"`` (the default) is bit-for-bit the
    reference solver; ``"numpy-mixed"`` iterates BiCG in complex64 and
    re-converges the complex128 residual by iterative refinement —
    same accepted modes to ~1e-6, cheaper memory traffic per round.
    """
    job = CBSJob(
        system=SystemSpec("chain", {"onsite": 0.0, "hopping": -1.0}),
        scan=ScanSpec(energies=(0.7,), n_mm=2, n_rh=2, seed=1,
                      linear_solver="bicg-batched"),
        ring=RingSpec(n_int=16),
    )
    reference = compute(job)
    mixed = compute(
        CBSJob.from_dict({**job.to_dict(),
                          "execution": {"backend": "numpy-mixed"}})
    )

    print("Array backends (available: %s):" % (available_backends(),))
    for name, result in (("numpy", reference), ("numpy-mixed", mixed)):
        lams = np.sort_complex(result.slices[0].lambdas())
        print(f"  backend={name:12s} λ = "
              + "  ".join(f"{lam:+.6f}" for lam in lams))
    dev = float(np.max(np.abs(
        np.sort_complex(reference.slices[0].lambdas())
        - np.sort_complex(mixed.slices[0].lambdas())
    )))
    print(f"  → mixed-precision deviation {dev:.1e} (documented bar: 1e-6);")
    print("    cache keys differ, so the runs never share slice-cache entries.")


if __name__ == "__main__":
    single_energy_demo()
    gap_scan_demo()
    backend_demo()
