#!/usr/bin/env python3
"""Quickstart: complex band structure of textbook models in ~30 lines.

Demonstrates the core API loop:

    blocks (H-, H0, H+)  →  SSHankelSolver  →  ring eigenvalues λ(E)
    λ = exp(i k a)       →  complex k       →  propagating/evanescent modes

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cbs.scan import CBSCalculator
from repro.models.chain import DiatomicChain, MonatomicChain
from repro.ss.solver import SSConfig, SSHankelSolver


def single_energy_demo() -> None:
    """One energy slice of the monatomic chain, against the exact answer."""
    chain = MonatomicChain(onsite=0.0, hopping=-1.0)  # band: [-2, 2]
    config = SSConfig(n_int=16, n_mm=2, n_rh=2, seed=1, linear_solver="direct")
    solver = SSHankelSolver(chain.blocks(), config)

    print("Monatomic chain, E inside the band (E = 0.7):")
    result = solver.solve(energy=0.7)
    exact = chain.analytic_lambdas(0.7)
    for lam in result.eigenvalues:
        err = np.min(np.abs(exact - lam))
        print(f"  λ = {lam:+.6f}   |λ| = {abs(lam):.6f}   error vs analytic: {err:.2e}")
    print("  → |λ| = 1: two counter-propagating Bloch waves.\n")

    print("Same chain, E above the band (E = 2.2):")
    result = solver.solve(energy=2.2)
    for lam in result.eigenvalues:
        print(f"  λ = {lam:+.6f}   |λ| = {abs(lam):.6f}")
    print("  → |λ| ≠ 1: a decaying/growing evanescent pair.\n")


def gap_scan_demo() -> None:
    """Scan the SSH chain through its gap: the evanescent loop + branch point."""
    ssh = DiatomicChain(t1=-1.0, t2=-0.6)  # gap of 0.8 centered at 0
    lo, hi = ssh.gap_edges()
    config = SSConfig(n_int=24, n_mm=2, n_rh=2, seed=1, linear_solver="direct")
    calc = CBSCalculator(ssh.blocks(), config)
    result = calc.scan_window(lo - 0.3, hi + 0.3, 13)

    print(f"SSH chain (gap [{lo:+.2f}, {hi:+.2f}]): dominant |Im k| per energy")
    print(f"  {'E':>7s}  {'modes':>5s}  {'propagating':>11s}  {'|Im k|':>8s}")
    for s, kim in zip(result.slices, result.min_imag_k()):
        kim_txt = f"{kim:8.4f}" if np.isfinite(kim) else "      --"
        print(f"  {s.energy:+7.3f}  {s.count:5d}  {len(s.propagating()):11d}  {kim_txt}")
    print("  → |Im k| rises into the gap and peaks at the branch point (E = 0).")


if __name__ == "__main__":
    single_energy_demo()
    gap_scan_demo()
