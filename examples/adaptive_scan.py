#!/usr/bin/env python3
"""Adaptive scan orchestration through the unified API, end to end.

One declarative :class:`repro.api.CBSJob` with
``ExecutionSpec(mode="orchestrated")`` drives the whole adaptive stack:

1. process-sharded energy scan (chunk-local warm starts),
2. auto-tuned SS parameters (stochastic rank probe + Hankel-saturation
   growth, quiet-window quadrature shrinking),
3. adaptive band-edge grid refinement,
4. the persistent slice cache (second run does zero solves),

plus the streaming surface (``compute_iter`` yields slices as shards
finish) and the versioned result store (``save_result``/``load_result``).

Run:  python examples/adaptive_scan.py
"""

import tempfile

from repro.api import (
    CBSJob,
    ExecutionSpec,
    RefinePolicy,
    RingSpec,
    ScanSpec,
    SystemSpec,
    compute,
    compute_iter,
    load_result,
    save_result,
)


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        # A deliberately undersized starting config: capacity
        # N_mm x N_rh = 4, while the ring holds 16 modes at E = 0.
        # The orchestrated engine's tuner must notice and grow it.
        job = CBSJob(
            system=SystemSpec("ladder", {"width": 8}),
            scan=ScanSpec(window=(-3.1, 3.1, 25), n_mm=2, n_rh=2, seed=11,
                          linear_solver="direct"),
            ring=RingSpec(n_int=24),
            execution=ExecutionSpec(
                mode="orchestrated",
                workers=2,
                warm_start=True,
                cache_dir=f"{workdir}/slice_cache",
                refine=RefinePolicy(min_de=0.01),
            ),
        )
        print(f"Workload: {job.system.name}{dict(job.system.params)}, "
              f"engine = {job.engine()}, job hash = {job.job_hash()}\n")

        print("-- first run: solve everything ------------------------------")
        first = compute(job)
        report = first.provenance["report"]
        shard = report["shards"][0]
        print(f"  {report['n_shards']} shard(s), {report['solves']} solves "
              f"({report['retunes']} retune re-solves), "
              f"{len(report['refined_energies'])} refined slices")
        print(f"  rank probe estimated {shard['probe_rank']} ring modes; "
              f"tuned subspace N_mm x N_rh = "
              f"{shard['final_n_mm']} x {shard['final_n_rh']} "
              f"(started {job.scan.n_mm} x {job.scan.n_rh})\n")

        print("-- second run: streamed straight from the slice cache -------")
        streamed = 0
        for sl in compute_iter(job, progress=lambda d, t: None):
            streamed += 1
            if streamed % 16 == 1:
                kappa = [abs(m.k.imag) for m in sl.evanescent()]
                dom = (f"min|Im k| = {min(kappa):.3f}" if kappa
                       else "purely propagating")
                print(f"  streamed E = {sl.energy:+.3f}: "
                      f"{sl.count:2d} modes, {dom}")
        print(f"  ... {streamed} slices total (base grid + refinement)\n")

        print("-- third run: cached, zero solves ---------------------------")
        result = compute(job)
        report = result.provenance["report"]
        print(f"  cache {report['cache_hits']}"
              f"/{report['cache_hits'] + report['cache_misses']} hits, "
              f"{report['solves']} solves")
        assert report["solves"] == 0, "expected a fully cached rerun"
        print()

        print("-- persist + reload the versioned result --------------------")
        json_path, npz_path = save_result(f"{workdir}/cbs_ladder", result)
        back = load_result(f"{workdir}/cbs_ladder")
        counts = back.mode_counts()
        print(f"  wrote {json_path.split('/')[-1]} + {npz_path.split('/')[-1]}; "
              f"reloaded {len(back.slices)} slices "
              f"(schema v{back.schema_version}, "
              f"job {back.provenance['job_hash']})")
        print(f"  mode counts across {counts.size} slices: "
              f"min {counts.min()}, max {counts.max()}")


if __name__ == "__main__":
    main()
