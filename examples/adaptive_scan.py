#!/usr/bin/env python3
"""Adaptive scan orchestration: a whole CBS workload, end to end.

Drives :class:`repro.cbs.orchestrator.ScanOrchestrator` through its four
features on a ladder model:

1. process-sharded energy scan (chunk-local warm starts),
2. auto-tuned SS parameters (stochastic rank probe + Hankel-saturation
   growth, quiet-window quadrature shrinking),
3. adaptive band-edge grid refinement,
4. the persistent slice cache (second run does zero solves).

Run:  python examples/adaptive_scan.py
"""

import tempfile

import numpy as np

from repro.cbs.orchestrator import (
    OrchestratorConfig,
    RefinePolicy,
    ScanOrchestrator,
    TuningPolicy,
)
from repro.models.ladder import TransverseLadder
from repro.ss.solver import SSConfig


def main() -> None:
    ladder = TransverseLadder(width=8)
    blocks = ladder.blocks()

    # A deliberately undersized starting config: capacity N_mm x N_rh = 4,
    # while the ring holds 16 modes at E = 0.  The tuner must notice.
    config = SSConfig(n_int=24, n_mm=2, n_rh=2, seed=11,
                      linear_solver="direct")

    with tempfile.TemporaryDirectory() as cache_dir:
        orch = OrchestratorConfig(
            executor=("processes", 2),
            tuning=TuningPolicy(),
            refine=RefinePolicy(min_de=0.01),
            cache_dir=cache_dir,
        )
        orc = ScanOrchestrator(blocks, config, orch=orch)

        print(f"Workload: {blocks}\n")

        print("-- first run: solve everything ------------------------------")
        scan = orc.scan_window(-3.1, 3.1, 25)
        print(scan.report.summary())
        shard = scan.report.shards[0]
        print(f"rank probe estimated {shard.probe_rank} ring modes; "
              f"tuned subspace N_mm x N_rh = "
              f"{shard.final_n_mm} x {shard.final_n_rh} "
              f"(started {config.n_mm} x {config.n_rh})")
        refined = sorted(scan.report.refined_energies)
        print(f"refinement inserted {len(refined)} slices"
              + (f", e.g. near E = {refined[0]:+.4f}" if refined else ""))
        counts = scan.result.mode_counts()
        print(f"mode counts across {counts.size} slices: "
              f"min {counts.min()}, max {counts.max()}\n")

        print("-- second run: served from the slice cache ------------------")
        again = ScanOrchestrator(blocks, config, orch=orch).scan_window(
            -3.1, 3.1, 25
        )
        print(again.report.summary())
        assert again.report.solves == 0, "expected a fully cached rerun"
        speedup = scan.report.wall_seconds / max(
            again.report.wall_seconds, 1e-9
        )
        print(f"wall time {scan.report.wall_seconds:.2f}s -> "
              f"{again.report.wall_seconds:.3f}s  (~{speedup:.0f}x)\n")

        print("-- sample of the computed CBS --------------------------------")
        for sl in scan.result.slices[::6]:
            kappa = [abs(m.k.imag) for m in sl.evanescent()]
            dom = f"min|Im k| = {min(kappa):.3f}" if kappa else "purely propagating"
            print(f"  E = {sl.energy:+.3f}: {sl.count:2d} modes, {dom}")


if __name__ == "__main__":
    main()
