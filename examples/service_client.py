#!/usr/bin/env python3
"""CBS-as-a-service: submit over HTTP, stream slices, save the result.

The service front end (`python -m repro.service`) speaks plain JSON
over HTTP, so a complete client needs nothing beyond the stdlib.  This
example runs the whole loop in one process:

    start a ServiceServer  →  POST the job  →  stream NDJSON slices
    →  GET the result  →  rebuild it with result_from_wire
    →  save_result / load_result round-trip
    →  resubmit: dedup + the result store serve it with zero solves

Run:  python examples/service_client.py
"""

import http.client
import json
import os
import tempfile

from repro.api import load_result, save_result
from repro.service import ServiceServer, result_from_wire


JOB = {
    "system": {"name": "ladder", "params": {"width": 3}},
    "scan": {"window": [-1.6, 1.6, 9], "n_mm": 4, "n_rh": 4, "seed": 7,
             "linear_solver": "direct"},
    "ring": {"n_int": 16},
}


def _request(addr, method, path, body=None, client="demo"):
    conn = http.client.HTTPConnection(*addr, timeout=120)
    conn.request(method, path, body=body, headers={"X-CBS-Client": client})
    resp = conn.getresponse()
    payload = json.loads(resp.read())
    conn.close()
    return resp.status, payload


def submit_and_stream(addr) -> str:
    """POST the job, then follow its NDJSON slice stream live."""
    status, ticket = _request(addr, "POST", "/v1/jobs", json.dumps(JOB))
    assert status == 200, ticket
    job_id = ticket["job_id"]
    print(f"submitted: job {job_id[:12]}… state={ticket['state']} "
          f"(deduped={ticket['deduped']}, from_store={ticket['from_store']})")

    conn = http.client.HTTPConnection(*addr, timeout=120)
    conn.request("GET", f"/v1/jobs/{job_id}/stream",
                 headers={"X-CBS-Client": "demo"})
    resp = conn.getresponse()
    print("streaming slices:")
    while True:
        line = resp.readline()
        if not line:
            break
        event = json.loads(line)
        if event.get("event") == "end":
            print(f"  … end: state={event['state']} "
                  f"({event['n_slices']} slices)")
            break
        n_prop = sum(
            m["mode_type"] == "propagating" for m in event["modes"]
        )
        print(f"  E = {event['energy']:+6.3f}  modes = "
              f"{len(event['modes']):2d}  propagating = {n_prop}")
    conn.close()
    return job_id


def fetch_and_save(addr, job_id, out_dir) -> None:
    """GET the finished result, rebuild it, persist it, read it back."""
    status, wire = _request(addr, "GET", f"/v1/jobs/{job_id}/result")
    assert status == 200, wire
    result = result_from_wire(wire)
    print(f"result: {len(result.slices)} slices, cell a = "
          f"{result.cell_length}, engine = {result.provenance['engine']}")

    base = os.path.join(out_dir, "service_result")
    json_path, npz_path = save_result(base, result)
    back = load_result(base)
    assert len(back.slices) == len(result.slices)
    assert back.provenance["job_hash"] == job_id
    print(f"saved + reloaded: {os.path.basename(json_path)} / "
          f"{os.path.basename(npz_path)}")


def resubmit_demo(addr) -> None:
    """The same job again: the store serves it without a solve."""
    status, ticket = _request(addr, "POST", "/v1/jobs", json.dumps(JOB))
    assert status == 200 and ticket["state"] == "done"
    _, metrics = _request(addr, "GET", "/v1/metrics")
    print(f"resubmit: from_store={ticket['from_store']} — "
          f"solves_started={metrics['solves_started']}, "
          f"store hits={metrics['store']['hits']}, "
          f"bytes={metrics['store']['bytes']}")
    assert metrics["solves_started"] == 1  # the first run, and only it


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as tmp:
        store_root = os.path.join(tmp, "store")
        with ServiceServer(store_root, max_queue=8) as server:
            job_id = submit_and_stream(server.address)
            fetch_and_save(server.address, job_id, tmp)
            resubmit_demo(server.address)
    print("done: one solve served every client, the second submit none.")
