#!/usr/bin/env python3
"""Complex band structure of bulk Al(100) from the real-space DFT substrate.

The full paper pipeline at laptop scale (paper §4.1's first test system):

1. build fcc Al(100), 4 atoms/cell, on a real-space grid;
2. assemble the Kohn-Sham block triple (9-point stencil, pseudopotentials);
3. estimate the Fermi energy by band filling;
4. run the Sakurai-Sugiura solver at energies around E_F;
5. cross-check the |λ| = 1 modes against the conventional band structure
   (the paper's Figure 6 check).

Run:  python examples/al100_complex_bands.py [--spacing 0.45]
"""

import argparse

import numpy as np

from repro.cbs.bands import band_structure
from repro.cbs.scan import CBSCalculator
from repro.dft.builders import bulk_al100, grid_for_structure
from repro.dft.fermi import estimate_fermi
from repro.dft.hamiltonian import build_blocks
from repro.ss.solver import SSConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--spacing", type=float, default=0.45,
                        help="grid spacing in Angstrom (paper: 0.2)")
    parser.add_argument("--energies", type=int, default=7,
                        help="number of energy slices around E_F")
    args = parser.parse_args()

    structure = bulk_al100()
    grid = grid_for_structure(structure, spacing_angstrom=args.spacing)
    print(f"system: {structure}")
    print(f"grid:   {grid}")

    blocks, info = build_blocks(structure, grid)
    print(f"assembled in {info.assembly_seconds:.2f} s: N = {info.n}, "
          f"nnz(H0) = {info.nnz_h0}, projectors = {info.n_projectors}")

    fermi = estimate_fermi(blocks, structure.n_valence_electrons())
    print(f"Fermi estimate: E_F = {fermi.fermi:+.4f} Ha "
          f"(gap = {fermi.gap:.4f} Ha → {'metal' if fermi.is_metallic else 'insulator'})")

    config = SSConfig(n_int=24, n_mm=8, n_rh=8, seed=7, linear_solver="auto")
    calc = CBSCalculator(blocks, config)
    energies = np.linspace(fermi.fermi - 0.15, fermi.fermi + 0.15, args.energies)
    result = calc.scan(energies)

    print("\nCBS around the Fermi energy (λ = exp(ik a)):")
    print(f"  {'E-E_F [Ha]':>11s}  {'modes':>5s}  {'prop.':>5s}  "
          f"{'Re k·a/π (propagating)':<30s}")
    for s in result.slices:
        ks = ", ".join(
            f"{abs(m.k.real) * blocks.cell_length / np.pi:.4f}"
            for m in s.propagating()
        )
        print(f"  {s.energy - fermi.fermi:+11.4f}  {s.count:5d}  "
              f"{len(s.propagating()):5d}  {ks:<30s}")

    # Figure-6 check: propagating modes vs conventional bands.
    bs = band_structure(blocks, n_k=801, dense_threshold=2000)
    worst = 0.0
    n_checked = 0
    for e, k in result.propagating_points():
        d = bs.distance_to_bands(e, abs(k))
        worst = max(worst, d)
        n_checked += 1
    print(f"\nband-structure cross-check: {n_checked} propagating modes, "
          f"max |Δk| = {worst:.2e} (paper quotes ~1e-5 agreement)")


if __name__ == "__main__":
    main()
