#!/usr/bin/env python3
"""Two-probe Landauer transmission through the unified workload API.

The transport workload in one declarative loop:

    CBSJob (system × scan × TransportSpec)  →  repro.api.compute(job)
    →  a TransportResult: retarded electrode self-energies Σ_L/Σ_R from
       the Sakurai-Sugiura contour moments (arXiv:1709.09324) and the
       Caroli transmission T(E), per energy, provenance-stamped

Run:  python examples/transmission.py
"""

import numpy as np

from repro.api import CBSJob, ScanSpec, SystemSpec, TransportSpec, compute
from repro.models import MonatomicChain
from repro.transport import decimation_self_energies


def ideal_wire_demo() -> None:
    """An ideal chain between two chain leads: T(E) = open channels.

    Inside the band there is exactly one conducting channel (T = 1);
    outside, transport is evanescent only (T = 0).
    """
    job = CBSJob(
        system=SystemSpec("chain", {"hopping": -1.0}),  # band: [-2, 2]
        scan=ScanSpec(window=(-2.5, 2.5, 11)),
        transport=TransportSpec(eta=1e-7, n_cells=2),
    )
    result = compute(job)
    print("Ideal chain (band [-2, 2]):")
    for sl in result.slices:
        bar = "#" * round(20 * sl.transmission)
        print(f"  E = {sl.energy:+5.2f}   T = {sl.transmission:8.6f}  {bar}")
    print("  → unit plateau inside the band, zero outside.\n")


def barrier_demo() -> None:
    """A square tunnel barrier: T decays exponentially with length.

    Shifting the device cells' onsite energy by +4 pushes the local
    band far above the scan window, so transport through n cells goes
    evanescently — each added cell multiplies T by |λ_barrier|², the
    complex-band decay factor of the barrier material.
    """
    energy, shift = 0.2, 4.0
    barrier = MonatomicChain(onsite=shift, hopping=-1.0)
    lam = float(min(np.abs(barrier.analytic_lambdas(energy))))
    print(f"Square barrier (onsite +{shift}), E = {energy}:")
    print(f"  CBS decay factor inside the barrier: |λ| = {lam:.4f}")
    previous = None
    for n_cells in (1, 2, 3, 4):
        job = CBSJob(
            system=SystemSpec("chain", {"hopping": -1.0}),
            scan=ScanSpec(energies=(energy,)),
            transport=TransportSpec(
                eta=1e-7, n_cells=n_cells, onsite_shift=shift
            ),
        )
        t = compute(job).slices[0].transmission
        ratio = f"   T_n/T_(n-1) = {t / previous:.4f}" if previous else ""
        print(f"  n_cells = {n_cells}   T = {t:.3e}{ratio}")
        previous = t
    print(f"  → the ratio approaches |λ|² = {lam**2:.4f}: tunneling is "
          "governed by the complex band structure.\n")


def cross_validation_demo() -> None:
    """SS contour moments vs Sancho-Rubio decimation, side by side."""
    system = SystemSpec("ladder", {"width": 4})
    job = CBSJob(
        system=system,
        scan=ScanSpec(window=(-2.6, 2.6, 5)),
        transport=TransportSpec(eta=1e-5),
    )
    result = compute(job)
    blocks = system.build()
    print("Ladder (width 4): SS contour Σ vs Sancho-Rubio decimation:")
    for sl in result.slices:
        sig_l, sig_r = decimation_self_energies(blocks, sl.energy, eta=1e-5)
        err = max(
            np.abs(sig_l - sl.sigma_l).max(),
            np.abs(sig_r - sl.sigma_r).max(),
        )
        print(f"  E = {sl.energy:+5.2f}   T = {sl.transmission:6.4f}   "
              f"channels = {sl.n_channels}   max|ΔΣ| = {err:.2e}")
    print("  → the two independent Σ(E) constructions agree to solver "
          "accuracy.")


if __name__ == "__main__":
    ideal_wire_demo()
    barrier_demo()
    cross_validation_demo()
