#!/usr/bin/env python3
"""Evanescent states and tunneling through a semiconducting nanotube.

The paper's motivation: evanescent modes (complex k) control electron
tunneling.  For a semiconducting (8,0) CNT, the CBS in the gap is a loop
connecting valence and conduction band edges; its apex (the branch point,
red dot in paper Fig. 11(a)) sets the decay length of gap states and the
attenuation of tunneling currents.

This example uses the π-tight-binding substrate (fast, exact reference
physics); swap in the `repro.dft` builders for the first-principles path.

Run:  python examples/cnt_gap_tunneling.py [--tube 8 0]
"""

import argparse

import numpy as np

from repro.cbs.branch import find_branch_points
from repro.cbs.scan import CBSCalculator
from repro.constants import bohr_to_angstrom
from repro.models.tightbinding import TightBindingCNT
from repro.ss.solver import SSConfig


def ascii_loop(result, width: int = 51) -> str:
    """ASCII rendering of the dominant |Im k| loop vs energy."""
    kim = result.min_imag_k()
    finite = kim[np.isfinite(kim)]
    if finite.size == 0:
        return "  (no evanescent modes in the window)"
    kmax = finite.max()
    lines = []
    for e, v in zip(result.energies, kim):
        if np.isfinite(v) and kmax > 0:
            bar = "#" * max(1, int(round(v / kmax * (width - 1))))
        else:
            bar = ""
        lines.append(f"  {e:+7.3f} |{bar}")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tube", type=int, nargs=2, default=(8, 0),
                        metavar=("N", "M"))
    parser.add_argument("--energies", type=int, default=25)
    args = parser.parse_args()

    tb = TightBindingCNT(*args.tube)
    blocks = tb.blocks()
    gap = tb.zone_folding_gap()
    print(f"({args.tube[0]},{args.tube[1]}) CNT: {blocks.n} atoms/cell, "
          f"zone-folding gap ≈ {gap:.3f} |t|")
    if gap == 0.0:
        print("tube is metallic — pick a semiconducting (n,0) with n % 3 != 0")
        return

    config = SSConfig(n_int=24, n_mm=8, n_rh=8, seed=5, linear_solver="auto")
    calc = CBSCalculator(blocks, config)
    half = 0.75 * gap
    result = calc.scan_window(-half, +half, args.energies)

    print("\ndominant decay rate |Im k| across the gap (energies in |t|):")
    print(ascii_loop(result))

    points = find_branch_points(result, energy_window=(-half, half))
    if points:
        bp = max(points, key=lambda p: abs(p.imag_k))
        decay_bohr = 1.0 / abs(bp.imag_k)
        print(f"\nbranch point: E = {bp.energy:+.4f} |t|, "
              f"|Im k| = {abs(bp.imag_k):.4f} 1/Bohr")
        print(f"→ shortest gap-state decay length: {decay_bohr:.2f} Bohr "
              f"= {bohr_to_angstrom(decay_bohr):.2f} Å")
        barrier = 5  # cells
        att = np.exp(-abs(bp.imag_k) * barrier * blocks.cell_length)
        print(f"→ tunneling attenuation through {barrier} cells: "
              f"~{att:.2e} per amplitude")
    else:
        print("\nno branch point detected (increase --energies)")


if __name__ == "__main__":
    main()
