#!/usr/bin/env python3
"""Hierarchical-parallelism study: real processes + the Oakforest-PACS model.

Part 1 measures *real* speedup on this machine by mapping independent
CBS energy slices over a process pool (the embarrassingly parallel axis
the paper exploits in §5 with 200 independent energies).

Part 2 reproduces the paper's strong-scaling *shapes* (Figures 8-10) with
the calibrated Oakforest-PACS cost model: ideal top layer, slightly
degraded middle layer, communication-limited bottom layer.

Run:  python examples/scaling_study.py [--workers 1 2 4 8]
"""

import argparse
import time

import numpy as np

from repro.dft.builders import bulk_al100, grid_for_structure
from repro.dft.hamiltonian import build_blocks
from repro.grid.grid import RealSpaceGrid
from repro.io.tables import ascii_table
from repro.parallel.costmodel import IterationCostModel
from repro.parallel.hierarchy import LayerAssignment
from repro.parallel.machine import OAKFOREST_PACS
from repro.parallel.simulator import IterationCountModel, ScalingSimulator
from repro.ss.solver import SSConfig, SSHankelSolver


def measured_process_scaling(workers_list) -> None:
    """Real local speedup over the energy-scan axis (process pool).

    SciPy's sparse kernels hold the GIL, so Python threads cannot
    accelerate the BiCG inner loops; the scan's embarrassingly parallel
    energy slices (paper §5: "200 independent calculations") parallelize
    across processes instead.
    """
    from repro.cbs.scan import CBSCalculator
    from repro.dft.fermi import estimate_fermi

    structure = bulk_al100()
    grid = grid_for_structure(structure, spacing_angstrom=0.42)
    blocks, info = build_blocks(structure, grid, include_nonlocal=False)
    fermi = estimate_fermi(blocks, structure.n_valence_electrons(),
                           n_bands=24, dense_threshold=100)
    energies = np.linspace(fermi.fermi - 0.1, fermi.fermi + 0.1, 8)
    print(f"workload: Al(100) kinetic+local, N = {info.n}, "
          f"8 energies around E_F = {fermi.fermi:+.3f} Ha\n")
    cfg = SSConfig(n_int=8, n_mm=4, n_rh=4, seed=3, linear_solver="bicg",
                   bicg_tol=1e-8, quorum_fraction=None, record_history=False)
    rows = []
    t_base = None
    for w in workers_list:
        calc = CBSCalculator(
            blocks, cfg,
            energy_executor=(None if w == 1 else ("processes", w)),
        )
        t0 = time.perf_counter()
        result = calc.scan(energies)
        dt = time.perf_counter() - t0
        if t_base is None:
            t_base = dt
        rows.append([w, f"{dt:.2f}", f"{t_base / dt:.2f}",
                     int(result.mode_counts().sum())])
    print(ascii_table(
        ["processes", "time [s]", "speedup", "modes found"],
        rows, title="Part 1 — measured energy-scan process scaling"))


def modeled_ofp_scaling() -> None:
    grid = RealSpaceGrid((72, 72, 20), (0.38, 0.38, 0.40))  # 32-atom CNT
    cost = IterationCostModel(OAKFOREST_PACS, grid, n_projectors=128,
                              ranks_per_node=1)
    counts = IterationCountModel(base_iterations=2800, seed=1).sample(32, 64)
    sim = ScalingSimulator(cost, counts, extraction_time=5.0)

    print("\nPart 2 — modeled Oakforest-PACS strong scaling "
          "(paper Fig. 8 shapes)")
    for layer, sweep, fixed in (
        ("top", [1, 2, 4, 8, 16, 32, 64], LayerAssignment(middle=2, threads=68)),
        ("middle", [1, 2, 4, 8, 16, 32], LayerAssignment(top=2, threads=68)),
        ("bottom", [1, 2, 4, 8, 16], LayerAssignment(top=2, middle=2, threads=17)),
    ):
        res = sim.sweep_layer(layer, sweep, fixed=fixed)
        rows = [
            [r["layer_count"], f"{r['solve_time_s']:.0f}",
             f"{r['speedup']:.1f}", f"{100 * r['efficiency']:.0f}%"]
            for r in res.rows()
        ]
        print(ascii_table(
            [f"{layer} procs", "solve [s]", "speedup", "efficiency"],
            rows, title=f"\n{layer} layer"))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4, 8])
    args = parser.parse_args()
    measured_process_scaling(args.workers)
    modeled_ofp_scaling()


if __name__ == "__main__":
    main()
