#!/usr/bin/env python3
"""Paper Figure 11: what bundling does to a nanotube's complex bands.

Compares three systems (π-tight-binding substrate):

    (a) isolated (8,0) CNT          — semiconducting, branch point mid-gap
    (b) 7-tube bundle               — inter-tube coupling broadens bands
    (c) crystalline (periodic) bundle — gap collapses (insulator → metal)

and reports the three observables the paper discusses: the band gap, the
number of propagating channels at the Fermi level, and the position/depth
of the gap's branch point.

Run:  python examples/bundle_metallization.py
"""

import numpy as np

from repro.cbs.bands import band_structure
from repro.cbs.scan import CBSCalculator
from repro.io.tables import ascii_table
from repro.models.tightbinding import (
    TightBindingCNT,
    tb_bundle7,
    tb_crystalline_bundle,
)
from repro.ss.solver import SSConfig


def analyze(name, blocks, n_energies=9):
    # Gap from the conventional bands (half filling → E_F = 0).
    bs = band_structure(blocks, n_k=101, dense_threshold=512)
    e = bs.energies.ravel()
    below = e[e < -1e-9]
    above = e[e > 1e-9]
    gap = float(above.min() - below.max()) if below.size and above.size else 0.0

    # λ_min = 0.4 keeps the whole in-gap loop inside the ring (the (8,0)
    # branch-point mode decays a full e-fold per 8-Bohr cell, λ ≈ 0.5).
    # Wide rings need the subspace grown via N_rh, not N_mm: moments carry
    # z^k up to k = 2 N_mm - 1, so a large N_mm on a wide ring spreads the
    # Hankel matrix over a huge dynamic range ((1/0.4)^15 ≈ 1e6 per side)
    # and the δ-truncation destroys it.  N_rh x N_mm = 128 covers the
    # 7-bundle's 56 ring modes.
    cfg = SSConfig(n_int=24, n_mm=4, n_rh=32, seed=5, linear_solver="auto",
                   lambda_min=0.4, residual_tol=1e-5)
    calc = CBSCalculator(blocks, cfg)
    window = max(gap, 0.08)
    result = calc.scan_window(-0.6 * window, 0.6 * window, n_energies)
    fermi_slice = result.slices[n_energies // 2]
    channels = len(fermi_slice.propagating())
    kim = result.min_imag_k()
    finite = kim[np.isfinite(kim)]
    max_decay = float(np.nanmax(finite)) if finite.size else 0.0
    return {
        "system": name,
        "atoms/cell": blocks.n,
        "gap [|t|]": round(gap, 4),
        "channels@EF": channels,
        "max |Im k| in gap": round(max_decay, 4),
    }


def main() -> None:
    rows = []
    iso = TightBindingCNT(8, 0).blocks()
    rows.append(analyze("isolated (8,0)", iso))

    b7, _s7 = tb_bundle7(8, 0)
    rows.append(analyze("7-tube bundle", b7))

    cb, _sc = tb_crystalline_bundle(8, 0)
    rows.append(analyze("crystalline bundle", cb))

    headers = list(rows[0].keys())
    print(ascii_table(headers, [[r[h] for h in headers] for r in rows],
                      title="Bundling effects on the (8,0) CNT (paper Fig. 11)"))
    print(
        "\nreading: bundling reduces the gap (crystalline packing closes it\n"
        "→ insulator-metal transition) and reshapes the in-gap evanescent\n"
        "loop — the branch point is pushed out of the shrinking gap."
    )


if __name__ == "__main__":
    main()
